"""Named camera presets and profile builders for realistic scenarios.

The paper motivates heterogeneity with cameras "from different
manufacturers", mixes of "high-end and low-end cameras", and sensing
decline over time (Section I).  This catalog provides concrete,
documented presets for those situations so examples and workloads can
speak in equipment terms rather than raw ``(r, phi)`` pairs.

All radii are in region units (the unit square has side 1); angles of
view are radians.  The absolute radii are calibrated for networks of a
few hundred to a few thousand sensors on the unit square — the regime
the paper's Figures 7 and 8 explore.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI
from repro.sensors.model import CameraSpec, GroupSpec, HeterogeneousProfile

__all__ = [
    "CAMERA_PRESETS",
    "aging_fleet",
    "budget_mix",
    "camera",
    "equal_area_pair",
    "mixed_profile",
]

#: Named presets: name -> (radius, angle_of_view).
CAMERA_PRESETS: Dict[str, Tuple[float, float]] = {
    # Narrow, long-reach lens: small phi, large r.
    "telephoto": (0.18, math.radians(30.0)),
    # Standard surveillance camera.
    "standard": (0.10, math.radians(60.0)),
    # Wide-angle, short reach.
    "wide_angle": (0.06, math.radians(110.0)),
    # Fisheye dome camera.
    "fisheye": (0.04, math.radians(180.0)),
    # Aged/degraded standard camera (Section I: sensing declines
    # with time or terrain obstruction).
    "degraded": (0.07, math.radians(50.0)),
    # Omnidirectional assembly ("several cameras bundled together",
    # Section VII-A).
    "omnidirectional": (0.05, TWO_PI),
}


def camera(name: str) -> CameraSpec:
    """Look up a preset camera by name."""
    try:
        radius, angle = CAMERA_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(CAMERA_PRESETS))
        raise InvalidParameterError(f"unknown camera preset {name!r}; known: {known}") from None
    return CameraSpec(radius=radius, angle_of_view=angle)


def mixed_profile(parts: Sequence[Tuple[str, float]]) -> HeterogeneousProfile:
    """Heterogeneous profile from ``(preset_name, fraction)`` parts.

    >>> profile = mixed_profile([("standard", 0.7), ("telephoto", 0.3)])
    >>> profile.num_groups
    2
    """
    return HeterogeneousProfile(
        GroupSpec(spec=camera(name), fraction=fraction, name=name)
        for name, fraction in parts
    )


def equal_area_pair(
    sensing_area: float, angle_narrow: float, angle_wide: float
) -> List[CameraSpec]:
    """Two specs with different shapes but identical sensing area.

    The Section VI-A experiment ("decisive role of sensing area") needs
    cameras that differ in ``(r, phi)`` but share ``s = phi r^2 / 2``;
    this helper builds such a pair.
    """
    if angle_narrow == angle_wide:
        raise InvalidParameterError("the two angles must differ to make distinct shapes")
    return [
        CameraSpec.from_area(sensing_area, angle_narrow),
        CameraSpec.from_area(sensing_area, angle_wide),
    ]


def budget_mix(
    high_end_fraction: float,
    high_end: str = "telephoto",
    low_end: str = "wide_angle",
) -> HeterogeneousProfile:
    """The paper's funds-limited mix of high-end and low-end cameras.

    ``high_end_fraction`` of the fleet gets the expensive camera; the
    rest get the cheap one.
    """
    if not (0.0 < high_end_fraction < 1.0):
        raise InvalidParameterError(
            f"high_end_fraction must be in (0, 1), got {high_end_fraction!r}"
        )
    return mixed_profile([(high_end, high_end_fraction), (low_end, 1.0 - high_end_fraction)])


def aging_fleet(new_fraction: float, preset: str = "standard") -> HeterogeneousProfile:
    """A fleet where part of the population has degraded with age.

    Models Section I's observation that "cameras' sensing capability
    will decline as time passes": ``new_fraction`` of sensors keep the
    preset's parameters, the rest drop to the ``degraded`` preset.
    """
    if not (0.0 < new_fraction < 1.0):
        raise InvalidParameterError(
            f"new_fraction must be in (0, 1), got {new_fraction!r}"
        )
    return mixed_profile([(preset, new_fraction), ("degraded", 1.0 - new_fraction)])
