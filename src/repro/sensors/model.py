"""Static camera sensor descriptions and heterogeneous group structure.

The paper (Section II-A) partitions the ``n`` deployed sensors into a
constant number ``u`` of groups ``G_1 .. G_u``.  Group ``G_y`` holds a
fraction ``c_y`` of the sensors (``0 < c_y < 1``, ``sum c_y = 1``), all
with the same sensing radius ``r_y`` and angle of view ``phi_y``; no two
groups share both parameters.  The *weighted sensing area*
``s_c = sum_y c_y * s_y`` with ``s_y = phi_y * r_y**2 / 2`` is the
quantity the critical-sensing-area theory (Definition 2) is expressed
in.

This module is purely descriptive — deployment and coverage live in
:mod:`repro.deployment` and :mod:`repro.core`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import InvalidParameterError, InvalidProfileError
from repro.geometry.angles import TWO_PI
from repro.geometry.sector import sector_area

__all__ = ["CameraSpec", "GroupSpec", "HeterogeneousProfile"]

#: Tolerance for the "fractions sum to one" profile invariant.
_FRACTION_TOL = 1e-9


@dataclass(frozen=True)
class CameraSpec:
    """Sensing parameters of a single camera model.

    Parameters
    ----------
    radius:
        Sensing radius ``r > 0``.
    angle_of_view:
        Angle of view ``phi`` in ``(0, 2*pi]``; ``2*pi`` models an
        omnidirectional sensor (the disk model of classic coverage
        theory, used in the Section VII comparisons).
    """

    radius: float
    angle_of_view: float

    def __post_init__(self) -> None:
        # sector_area performs full domain validation.
        sector_area(self.radius, self.angle_of_view)
        object.__setattr__(self, "radius", float(self.radius))
        object.__setattr__(self, "angle_of_view", min(float(self.angle_of_view), TWO_PI))

    @property
    def sensing_area(self) -> float:
        """``s = phi * r**2 / 2``."""
        return sector_area(self.radius, self.angle_of_view)

    @property
    def is_omnidirectional(self) -> bool:
        return self.angle_of_view >= TWO_PI - 1e-12

    @classmethod
    def from_area(cls, sensing_area: float, angle_of_view: float) -> "CameraSpec":
        """The spec with the given angle of view and sensing area.

        Solves ``s = phi * r**2 / 2`` for ``r``; the inverse of
        :attr:`sensing_area`.  This is how experiments pin a fleet to a
        target critical sensing area.
        """
        if sensing_area <= 0:
            raise InvalidParameterError(
                f"sensing area must be positive, got {sensing_area!r}"
            )
        if not (0.0 < angle_of_view <= TWO_PI + 1e-12):
            raise InvalidParameterError(
                f"angle of view must be in (0, 2*pi], got {angle_of_view!r}"
            )
        radius = math.sqrt(2.0 * sensing_area / min(angle_of_view, TWO_PI))
        return cls(radius=radius, angle_of_view=angle_of_view)

    @classmethod
    def disk(cls, radius: float) -> "CameraSpec":
        """An omnidirectional (disk) sensor of the given radius."""
        return cls(radius=radius, angle_of_view=TWO_PI)

    def scaled_to_area(self, sensing_area: float) -> "CameraSpec":
        """Same angle of view, radius rescaled to hit ``sensing_area``."""
        return CameraSpec.from_area(sensing_area, self.angle_of_view)


@dataclass(frozen=True)
class GroupSpec:
    """One heterogeneous group ``G_y``: a camera spec plus its fraction.

    ``fraction`` is the paper's ``c_y``: the constant share of the total
    sensor population belonging to this group.
    """

    spec: CameraSpec
    fraction: float
    name: str = ""

    def __post_init__(self) -> None:
        if not (0.0 < self.fraction <= 1.0):
            raise InvalidProfileError(
                f"group fraction must be in (0, 1], got {self.fraction!r}"
            )

    @property
    def radius(self) -> float:
        return self.spec.radius

    @property
    def angle_of_view(self) -> float:
        return self.spec.angle_of_view

    @property
    def sensing_area(self) -> float:
        return self.spec.sensing_area

    @property
    def weighted_sensing_area(self) -> float:
        """This group's contribution ``c_y * s_y`` to ``s_c``."""
        return self.fraction * self.sensing_area


class HeterogeneousProfile:
    """The full heterogeneity structure of a camera sensor network.

    An immutable, validated collection of :class:`GroupSpec` whose
    fractions sum to one and whose camera specs are pairwise distinct
    (either radius or angle of view differs), exactly as Section II-A
    requires.

    The profile is the unit the analytical layer consumes: theorems take
    a profile (for ``s_y``, ``phi_y``, ``r_y``, ``c_y``) plus a sensor
    count ``n``.
    """

    __slots__ = ("_groups",)

    def __init__(self, groups: Iterable[GroupSpec]):
        group_list = tuple(groups)
        if not group_list:
            raise InvalidProfileError("a profile needs at least one group")
        total = sum(g.fraction for g in group_list)
        if abs(total - 1.0) > _FRACTION_TOL:
            raise InvalidProfileError(
                f"group fractions must sum to 1, got {total!r}"
            )
        seen: set = set()
        for group in group_list:
            key = (round(group.radius, 12), round(group.angle_of_view, 12))
            if key in seen:
                raise InvalidProfileError(
                    "two groups share both radius and angle of view; merge them"
                )
            seen.add(key)
        self._groups = group_list

    # -- constructors ----------------------------------------------------

    @classmethod
    def homogeneous(cls, spec: CameraSpec) -> "HeterogeneousProfile":
        """A single-group (homogeneous) profile."""
        return cls((GroupSpec(spec=spec, fraction=1.0, name="all"),))

    @classmethod
    def from_pairs(
        cls, pairs: Sequence[Tuple[CameraSpec, float]]
    ) -> "HeterogeneousProfile":
        """Build from ``(spec, fraction)`` pairs."""
        return cls(
            GroupSpec(spec=spec, fraction=frac, name=f"G{i + 1}")
            for i, (spec, frac) in enumerate(pairs)
        )

    # -- structure --------------------------------------------------------

    @property
    def groups(self) -> Tuple[GroupSpec, ...]:
        return self._groups

    @property
    def num_groups(self) -> int:
        """The paper's ``u``."""
        return len(self._groups)

    @property
    def is_homogeneous(self) -> bool:
        return len(self._groups) == 1

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self):
        return iter(self._groups)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HeterogeneousProfile):
            return NotImplemented
        return self._groups == other._groups

    def __hash__(self) -> int:
        return hash(self._groups)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{g.name or 'G' + str(i + 1)}(r={g.radius:.4g}, phi={g.angle_of_view:.4g}, "
            f"c={g.fraction:.4g})"
            for i, g in enumerate(self._groups)
        )
        return f"HeterogeneousProfile({parts})"

    # -- derived quantities -------------------------------------------------

    @property
    def weighted_sensing_area(self) -> float:
        """The paper's ``s_c = sum_y c_y * s_y`` (Section II-C)."""
        return sum(g.weighted_sensing_area for g in self._groups)

    @property
    def max_radius(self) -> float:
        """Largest sensing radius across groups (bounds coverage reach)."""
        return max(g.radius for g in self._groups)

    def sensing_areas(self) -> List[float]:
        """``[s_1, .., s_u]`` in group order."""
        return [g.sensing_area for g in self._groups]

    def fractions(self) -> List[float]:
        """``[c_1, .., c_u]`` in group order."""
        return [g.fraction for g in self._groups]

    def group_counts(self, n: int) -> List[int]:
        """Integer sensor counts ``n_y ~= c_y * n`` summing exactly to ``n``.

        Uses the largest-remainder method so rounding error never
        accumulates and every group with positive fraction receives at
        least its floor share.
        """
        if n < 1:
            raise InvalidParameterError(f"sensor count must be >= 1, got {n!r}")
        raw = [g.fraction * n for g in self._groups]
        floors = [int(math.floor(v)) for v in raw]
        deficit = n - sum(floors)
        remainders = sorted(
            range(len(raw)), key=lambda i: raw[i] - floors[i], reverse=True
        )
        for i in remainders[:deficit]:
            floors[i] += 1
        return floors

    # -- rescaling ------------------------------------------------------------

    def scaled_to_weighted_area(self, target: float) -> "HeterogeneousProfile":
        """A profile with the same shape but ``s_c`` rescaled to ``target``.

        Every group keeps its angle of view and fraction; radii scale by
        a common factor so that each ``s_y`` scales proportionally and
        the weighted sum hits ``target`` exactly.  This is the primitive
        experiments use to place a fleet at ``q * CSA``.
        """
        if target <= 0:
            raise InvalidParameterError(f"target area must be positive, got {target!r}")
        ratio = target / self.weighted_sensing_area
        scale = math.sqrt(ratio)
        return HeterogeneousProfile(
            GroupSpec(
                spec=CameraSpec(
                    radius=g.radius * scale, angle_of_view=g.angle_of_view
                ),
                fraction=g.fraction,
                name=g.name,
            )
            for g in self._groups
        )

    def describe(self) -> Dict[str, object]:
        """A plain-dict summary suitable for logging and result tables."""
        return {
            "num_groups": self.num_groups,
            "weighted_sensing_area": self.weighted_sensing_area,
            "groups": [
                {
                    "name": g.name or f"G{i + 1}",
                    "radius": g.radius,
                    "angle_of_view": g.angle_of_view,
                    "fraction": g.fraction,
                    "sensing_area": g.sensing_area,
                }
                for i, g in enumerate(self._groups)
            ],
        }
