"""Camera sensor models.

- :mod:`repro.sensors.model` — static sensor descriptions: a single
  camera's sensing parameters (:class:`CameraSpec`), heterogeneous group
  structure (:class:`GroupSpec`, :class:`HeterogeneousProfile`,
  Section II-A of the paper) and the weighted sensing area ``s_c``.
- :mod:`repro.sensors.fleet` — a deployed population of sensors stored
  as numpy arrays with vectorised coverage queries
  (:class:`SensorFleet`).
- :mod:`repro.sensors.probabilistic` — a distance-decaying detection
  model, the probabilistic extension the paper names as future work.
- :mod:`repro.sensors.catalog` — named presets for realistic cameras.
"""

from repro.sensors.fleet import SensorFleet
from repro.sensors.model import CameraSpec, GroupSpec, HeterogeneousProfile
from repro.sensors.probabilistic import ExponentialDecayModel, ProbabilisticSensingModel

__all__ = [
    "CameraSpec",
    "ExponentialDecayModel",
    "GroupSpec",
    "HeterogeneousProfile",
    "ProbabilisticSensingModel",
    "SensorFleet",
]
