"""ASCII charts for terminals without a plotting backend.

:func:`ascii_line_plot` renders one or more ``(x, y)`` series on a
character grid with axis labels — enough to eyeball the monotone decay
and factor-two gap of the CSA curves.  :func:`ascii_scatter_map`
renders a deployment (sensor positions, optionally orientations) over
the unit square.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["ascii_coverage_map", "ascii_line_plot", "ascii_scatter_map"]

#: Glyphs assigned to successive series.
_SERIES_GLYPHS = "*o+x#@%&"


def ascii_line_plot(
    series: Mapping[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named ``(xs, ys)`` series as an ASCII chart.

    Each series gets the next glyph from ``* o + x ...``; collisions
    show the later series.  Axes are linear; ranges are the union over
    all series, padded by 2%.
    """
    if not series:
        raise InvalidParameterError("need at least one series")
    if width < 16 or height < 4:
        raise InvalidParameterError("plot must be at least 16x4 characters")
    all_x = np.concatenate([np.asarray(xs, dtype=float) for xs, _ in series.values()])
    all_y = np.concatenate([np.asarray(ys, dtype=float) for _, ys in series.values()])
    if all_x.size == 0:
        raise InvalidParameterError("series must contain points")
    x_min, x_max = float(all_x.min()), float(all_x.max())
    y_min, y_max = float(all_y.min()), float(all_y.max())
    x_pad = 0.02 * (x_max - x_min) or 1.0
    y_pad = 0.02 * (y_max - y_min) or 1.0
    x_min, x_max = x_min - x_pad, x_max + x_pad
    y_min, y_max = y_min - y_pad, y_max + y_pad

    canvas = [[" "] * width for _ in range(height)]

    def to_cell(x: float, y: float) -> Tuple[int, int]:
        col = int((x - x_min) / (x_max - x_min) * (width - 1))
        row = int((y - y_min) / (y_max - y_min) * (height - 1))
        return (height - 1 - row, col)

    legend = []
    for (name, (xs, ys)), glyph in zip(series.items(), _SERIES_GLYPHS):
        legend.append(f"{glyph} {name}")
        for x, y in zip(xs, ys):
            row, col = to_cell(float(x), float(y))
            canvas[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (range [{y_min:.4g}, {y_max:.4g}])")
    for row in canvas:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} (range [{x_min:.4g}, {x_max:.4g}])")
    lines.append("  ".join(legend))
    return "\n".join(lines)


def ascii_coverage_map(covered: np.ndarray, title: str = "") -> str:
    """Render a boolean coverage grid (indexed ``[column, row]``).

    Covered cells print ``#``, uncovered cells ``.``; row 0 (the bottom
    of the region) renders at the bottom, matching
    :class:`repro.barrier.grid_barrier.CoverageGrid` conventions.
    """
    covered = np.asarray(covered, dtype=bool)
    if covered.ndim != 2:
        raise InvalidParameterError(
            f"coverage grid must be 2-D, got shape {covered.shape}"
        )
    cols, rows = covered.shape
    border = "+" + "-" * cols + "+"
    lines = []
    if title:
        lines.append(title)
    lines.append(border)
    for row in range(rows - 1, -1, -1):
        lines.append(
            "|" + "".join("#" if covered[col, row] else "." for col in range(cols)) + "|"
        )
    lines.append(border)
    return "\n".join(lines)


def ascii_scatter_map(
    positions: np.ndarray,
    side: float = 1.0,
    width: int = 48,
    height: int = 24,
    marks: Optional[np.ndarray] = None,
    title: str = "",
) -> str:
    """Render point positions over a square region.

    ``marks`` (optional boolean array) highlights a subset with ``#``
    (e.g. the sensors covering a probe point); other points render as
    ``.``.
    """
    positions = np.asarray(positions, dtype=float).reshape(-1, 2)
    if width < 8 or height < 4:
        raise InvalidParameterError("map must be at least 8x4 characters")
    if side <= 0:
        raise InvalidParameterError(f"side must be positive, got {side!r}")
    if marks is not None:
        marks = np.asarray(marks, dtype=bool).reshape(-1)
        if marks.shape[0] != positions.shape[0]:
            raise InvalidParameterError("marks length must match positions")
    canvas = [[" "] * width for _ in range(height)]
    for i, (x, y) in enumerate(positions):
        col = min(width - 1, int(x / side * width))
        row = min(height - 1, int(y / side * height))
        glyph = "#" if marks is not None and marks[i] else "."
        current = canvas[height - 1 - row][col]
        if current != "#":  # highlighted points always win
            canvas[height - 1 - row][col] = glyph
    border = "+" + "-" * width + "+"
    lines = []
    if title:
        lines.append(title)
    lines.append(border)
    lines.extend("|" + "".join(row) + "|" for row in canvas)
    lines.append(border)
    return "\n".join(lines)
