"""Text-mode visualisation.

The reproduction environment has no plotting backend, so figures are
rendered two ways: numeric series exported as CSV
(:mod:`repro.viz.csv_export`) for external plotting, and ASCII charts
(:mod:`repro.viz.ascii_plot`) for terminal inspection — line charts
for the CSA curves of Figures 7-8 and scatter maps for deployments.
"""

from repro.viz.ascii_plot import (
    ascii_coverage_map,
    ascii_line_plot,
    ascii_scatter_map,
)
from repro.viz.csv_export import export_series, export_table

__all__ = [
    "ascii_coverage_map",
    "ascii_line_plot",
    "ascii_scatter_map",
    "export_series",
    "export_table",
]
