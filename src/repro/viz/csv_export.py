"""CSV export helpers.

Benchmarks write each reproduced figure's series to
``results/<experiment>.csv`` so the numbers behind every chart are
inspectable and re-plottable outside this environment.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence, Union

from repro.errors import InvalidParameterError
from repro.simulation.results import ResultTable

__all__ = ["export_series", "export_table"]


def export_series(
    path: Union[str, Path],
    x_name: str,
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
) -> Path:
    """Write an x column plus named y columns to CSV."""
    xs = list(x_values)
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise InvalidParameterError(
                f"series {name!r} has {len(ys)} values, expected {len(xs)}"
            )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, lineterminator="\n")
        writer.writerow([x_name, *series.keys()])
        for i, x in enumerate(xs):
            writer.writerow([x, *[series[name][i] for name in series]])
    return path


def export_table(path: Union[str, Path], table: ResultTable) -> Path:
    """Write a :class:`ResultTable` to CSV (delegates to the table)."""
    return table.save_csv(path)
