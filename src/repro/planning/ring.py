"""Minimum-sensor rings: optimal single-target constructions.

Section III proves a point needs at least ``ceil(pi/theta)`` covering
sensors for full-view coverage; a ring of exactly that many cameras,
evenly spaced and aimed at the target, attains the bound (the viewed
directions are evenly spaced, so the largest gap is
``2*pi/k <= 2*theta``).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.core.full_view import minimum_sensors_for_full_view, validate_effective_angle
from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI, normalize_angle
from repro.geometry.torus import Region, UNIT_TORUS
from repro.sensors.fleet import SensorFleet

__all__ = ["Point", "full_view_ring", "ring_radius_bounds"]

Point = Tuple[float, float]


def ring_radius_bounds(reach: float) -> Tuple[float, float]:
    """Admissible standoff distances for a camera of sensing radius ``reach``.

    Any standoff in ``(0, reach]`` works for the aimed ring; the upper
    bound is the sensing radius itself.
    """
    if reach <= 0:
        raise InvalidParameterError(f"reach must be positive, got {reach!r}")
    return (0.0, reach)


def full_view_ring(
    target: Point,
    theta: float,
    standoff: float,
    reach: float,
    angle_of_view: float = math.pi / 2.0,
    count: int | None = None,
    phase: float = 0.0,
    region: Region = UNIT_TORUS,
) -> SensorFleet:
    """A minimum ring of cameras full-view covering ``target``.

    Parameters
    ----------
    target:
        The point to cover.
    theta:
        Effective angle; the ring uses ``ceil(pi/theta)`` cameras
        unless ``count`` overrides it (must be at least the minimum).
    standoff:
        Distance of each camera from the target; must not exceed
        ``reach``.
    reach, angle_of_view:
        Sensing parameters of each camera.
    phase:
        Rotation of the whole ring (radians), for tiling multiple
        rings without alignment artifacts.
    """
    theta = validate_effective_angle(theta)
    minimum = minimum_sensors_for_full_view(theta)
    k = minimum if count is None else int(count)
    if k < minimum:
        raise InvalidParameterError(
            f"count {k} is below the minimum {minimum} for theta={theta!r}"
        )
    if not (0.0 < standoff <= reach):
        raise InvalidParameterError(
            f"standoff must be in (0, reach]; got standoff={standoff!r}, reach={reach!r}"
        )
    if standoff > 0.5 * region.side:
        raise InvalidParameterError(
            "standoff exceeds half the region side; the ring would self-intersect "
            "on the torus"
        )
    bearings = phase + np.arange(k) * (TWO_PI / k)
    positions = np.stack(
        [
            target[0] + standoff * np.cos(bearings),
            target[1] + standoff * np.sin(bearings),
        ],
        axis=1,
    )
    # Aim each camera back at the target.
    orientations = normalize_angle(bearings + math.pi)
    return SensorFleet(
        positions=positions,
        orientations=orientations,
        radii=np.full(k, float(reach)),
        angles=np.full(k, float(angle_of_view)),
        region=region,
    )
