"""Orientation optimisation for fixed camera positions.

The model fixes orientations at deployment, drawn uniformly — fine for
air drops, wasteful for pole-mounted cameras that installers can aim.
Given fixed positions and a set of target points, this module assigns
orientations to maximise the number of *full-view covered* targets by
coordinate ascent:

- each sensor's candidate orientations are the bearings towards the
  targets within its sensing radius (aiming between targets is never
  better than aiming at one, because coverage of a target only depends
  on whether it falls inside the wedge — the candidate set containing
  each target-aligned wedge boundary sweep is reduced to target
  bearings, which preserves at least one optimum wedge per covered
  subset up to wedge-width granularity);
- sensors are visited round-robin; each takes the candidate that
  maximises the global objective (covered targets, tie-broken by total
  safe-direction measure), keeping its current aim on ties;
- passes repeat until a full sweep makes no improvement.

This is a heuristic (the exact problem is combinatorial), but it is
monotone in the objective, terminates, and in practice roughly doubles
the covered-target count over random aiming (see the PLAN experiment).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.full_view import validate_effective_angle
from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI
from repro.geometry.intervals import max_circular_gap
from repro.geometry.torus import Region, UNIT_TORUS
from repro.sensors.fleet import SensorFleet

__all__ = [
    "OptimizationResult",
    "Point",
    "covered_target_count",
    "optimize_orientations",
]

Point = Tuple[float, float]


def covered_target_count(
    fleet: SensorFleet, targets: np.ndarray, theta: float
) -> int:
    """Number of targets full-view covered by the fleet (exact test)."""
    from repro.core.batch import full_view_mask

    return int(full_view_mask(fleet, targets, theta).sum())


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of :func:`optimize_orientations`.

    Attributes
    ----------
    fleet:
        The fleet with optimised orientations.
    covered_before, covered_after:
        Full-view covered target counts under the initial and final
        orientations.
    passes:
        Completed coordinate-ascent sweeps (including the final
        no-improvement sweep).
    """

    fleet: SensorFleet
    covered_before: int
    covered_after: int
    passes: int


def _objective(
    covers: np.ndarray, directions: np.ndarray, theta: float
) -> Tuple[int, float]:
    """(covered targets, total safe measure) for a configuration.

    ``covers``: (m, n) boolean; ``directions``: (m, n) viewed
    directions.  The secondary term — the summed angular measure of
    each target's safe facing-direction set — rewards *partial*
    progress towards covering a target, which is what lets coordinate
    ascent escape the all-or-nothing plateau of the primary count.
    """
    from repro.geometry.intervals import AngularIntervalSet

    m = covers.shape[0]
    covered = 0
    safe_total = 0.0
    for i in range(m):
        dirs = directions[i][covers[i]]
        if dirs.size == 0:
            continue
        gap = max_circular_gap(dirs)
        if gap <= 2.0 * theta + 1e-12:
            covered += 1
            safe_total += TWO_PI
        else:
            safe_total += AngularIntervalSet.from_directions(dirs, theta).measure()
    return covered, safe_total


def optimize_orientations(
    positions: np.ndarray,
    radii: np.ndarray,
    angles: np.ndarray,
    targets: np.ndarray,
    theta: float,
    initial_orientations: np.ndarray | None = None,
    max_passes: int = 8,
    region: Region = UNIT_TORUS,
) -> OptimizationResult:
    """Aim fixed cameras to maximise full-view covered targets.

    Parameters mirror :class:`SensorFleet` columns; ``targets`` is an
    ``(m, 2)`` array of points to protect.  When
    ``initial_orientations`` is omitted, cameras start aimed at their
    nearest in-range target (or bearing 0 if none).
    """
    theta = validate_effective_angle(theta)
    positions = np.asarray(positions, dtype=float).reshape(-1, 2)
    radii = np.asarray(radii, dtype=float).reshape(-1)
    angles = np.asarray(angles, dtype=float).reshape(-1)
    targets = np.asarray(targets, dtype=float).reshape(-1, 2)
    n = positions.shape[0]
    m = targets.shape[0]
    if n == 0 or m == 0:
        raise InvalidParameterError("need at least one sensor and one target")
    if max_passes < 1:
        raise InvalidParameterError(f"max_passes must be >= 1, got {max_passes!r}")

    # Static geometry: bearings sensor->target, distances, and the
    # viewed directions target->sensor.
    bearing_st = np.empty((n, m))
    viewed = np.empty((m, n))
    in_range = np.empty((n, m), dtype=bool)
    for j in range(n):
        delta = region.displacements(
            (positions[j, 0], positions[j, 1]), targets
        )  # sensor -> target
        dist = np.hypot(delta[:, 0], delta[:, 1])
        bearing_st[j] = np.mod(np.arctan2(delta[:, 1], delta[:, 0]), TWO_PI)
        viewed[:, j] = np.mod(np.arctan2(-delta[:, 1], -delta[:, 0]), TWO_PI)
        in_range[j] = (dist <= radii[j]) & (dist > 0)

    half = 0.5 * angles

    def covers_for(j: int, orientation: float) -> np.ndarray:
        offset = np.abs(np.mod(bearing_st[j] - orientation + math.pi, TWO_PI) - math.pi)
        return in_range[j] & (offset <= half[j] + 1e-12)

    # Initial orientations.
    if initial_orientations is None:
        orientations = np.zeros(n)
        for j in range(n):
            candidates = np.flatnonzero(in_range[j])
            if candidates.size:
                orientations[j] = bearing_st[j][candidates[0]]
    else:
        orientations = np.mod(
            np.asarray(initial_orientations, dtype=float).reshape(-1).copy(), TWO_PI
        )
        if orientations.shape[0] != n:
            raise InvalidParameterError("initial_orientations length mismatch")

    covers = np.stack([covers_for(j, orientations[j]) for j in range(n)], axis=1)  # (m, n)
    viewed_matrix = viewed  # (m, n)

    initial_score = _objective(covers, viewed_matrix, theta)
    best_score = initial_score

    passes = 0
    for _ in range(max_passes):
        passes += 1
        improved = False
        for j in range(n):
            candidates = bearing_st[j][in_range[j]]
            if candidates.size == 0:
                continue
            current = orientations[j]
            best_orientation = current
            local_best = best_score
            for candidate in np.unique(candidates):
                if candidate == current:
                    continue
                covers[:, j] = covers_for(j, float(candidate))
                score = _objective(covers, viewed_matrix, theta)
                if score > local_best:
                    local_best = score
                    best_orientation = float(candidate)
            covers[:, j] = covers_for(j, best_orientation)
            if best_orientation != current:
                orientations[j] = best_orientation
                best_score = local_best
                improved = True
        if not improved:
            break

    fleet = SensorFleet(
        positions=positions,
        orientations=orientations,
        radii=radii,
        angles=angles,
        region=region,
    )
    final_covered = _objective(covers, viewed_matrix, theta)[0]
    return OptimizationResult(
        fleet=fleet,
        covered_before=initial_score[0],
        covered_after=final_covered,
        passes=passes,
    )
