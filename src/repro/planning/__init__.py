"""Constructive placement and aiming — the deterministic counterpart.

The paper studies *random* deployment because careful arrangement is
sometimes impossible; when it IS possible, the same theory yields
constructions:

- :mod:`repro.planning.ring` — the minimum ring: ``ceil(pi/theta)``
  cameras evenly spaced around a target, each aimed at it, achieve
  full-view coverage with the provably fewest sensors (Section III's
  per-point lower bound, attained).
- :mod:`repro.planning.orientation_opt` — fixed positions (e.g. an
  existing pole network), free orientations: coordinate-ascent aiming
  that maximises the number of full-view covered targets.  Quantifies
  how much the "orientations cannot steer and are random" assumption
  leaves on the table.
"""

from repro.planning.orientation_opt import (
    OptimizationResult,
    covered_target_count,
    optimize_orientations,
)
from repro.planning.ring import full_view_ring, ring_radius_bounds

__all__ = [
    "OptimizationResult",
    "covered_target_count",
    "full_view_ring",
    "optimize_orientations",
    "ring_radius_bounds",
]
