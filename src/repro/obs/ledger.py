"""Persistent append-only run ledger (``fullview-ledger-v1``).

Where a trace answers "what happened inside that run", the ledger
answers "which runs happened at all": one JSONL row per observed run —
id, experiment, config digest, seed, git sha, executor and worker
count, wall time, throughput, outcome, fault-handling totals and the
paths of the run's trace/metrics artifacts — appended when the owning
:class:`~repro.obs.ObsContext` closes.  Rows go out through
:func:`repro.ioutil.append_jsonl_line` (single fsynced ``O_APPEND``
write), so concurrent runs can grow the same ledger without tearing a
line, and a crash mid-run simply records nothing.

The default ledger lives at ``~/.fullview/runs.jsonl``; ``--ledger
PATH`` on the CLI or the ``FULLVIEW_LEDGER`` environment variable
redirect it.  ``fullview runs`` lists/inspects the rows (newest first,
schema-validated on read: a corrupt or foreign line is reported and
skipped, never trusted).
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "LEDGER_ENV_VAR",
    "LEDGER_FORMAT",
    "append_run",
    "default_ledger_path",
    "git_sha",
    "load_runs",
    "new_run_id",
    "render_runs_table",
    "validate_row",
]

#: Schema tag stamped into every ledger row.
LEDGER_FORMAT = "fullview-ledger-v1"

#: Environment variable overriding the default ledger location.
LEDGER_ENV_VAR = "FULLVIEW_LEDGER"

#: ``field name -> (required types, may be null)`` for a v1 row.
_ROW_FIELDS: Dict[str, Tuple[tuple, bool]] = {
    "format": ((str,), False),
    "run_id": ((str,), False),
    "experiment": ((str,), False),
    "config_digest": ((str,), True),
    "seed": ((int,), True),
    "git_sha": ((str,), True),
    "executor": ((str,), False),
    "workers": ((int,), False),
    "wall_seconds": ((int, float), False),
    "trials_per_sec": ((int, float), False),
    "trials_completed": ((int,), False),
    "trials_failed": ((int,), False),
    "outcome": ((str,), False),
    "retries": ((int,), False),
    "respawns": ((int,), False),
    "quarantined": ((int,), False),
    "checkpoints_recovered": ((int,), False),
    "trace_path": ((str,), True),
    "metrics_path": ((str,), True),
    "started_unix": ((int, float), False),
}

#: Values ``outcome`` may take.  ``cached`` marks a coverage-service
#: request answered from the persistent result cache without any
#: engine run, so throughput analyses can exclude it.
_OUTCOMES = ("ok", "error", "cached")


def default_ledger_path() -> Path:
    """``$FULLVIEW_LEDGER`` if set, else ``~/.fullview/runs.jsonl``."""
    override = os.environ.get(LEDGER_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".fullview" / "runs.jsonl"


def new_run_id() -> str:
    """A fresh 12-hex-char run identifier.

    Random by design — run ids must differ between identically-seeded
    runs; nothing downstream of the ledger feeds back into trial RNG.
    """
    return uuid.uuid4().hex[:12]


def git_sha() -> Optional[str]:
    """The working tree's HEAD sha, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def validate_row(row: Any) -> Optional[str]:
    """``None`` if ``row`` is a well-formed v1 ledger row, else why not."""
    if not isinstance(row, dict):
        return "row is not a JSON object"
    if row.get("format") != LEDGER_FORMAT:
        return f"format is {row.get('format')!r}, expected {LEDGER_FORMAT!r}"
    for field, (types, nullable) in _ROW_FIELDS.items():
        if field not in row:
            return f"missing field {field!r}"
        value = row[field]
        if value is None:
            if not nullable:
                return f"field {field!r} must not be null"
            continue
        # bool is an int subclass; a ledger count of ``true`` is a bug.
        if isinstance(value, bool) or not isinstance(value, types):
            return f"field {field!r} has type {type(value).__name__}"
        if isinstance(value, float) and not math.isfinite(value):
            return f"field {field!r} is not finite"
    if row["outcome"] not in _OUTCOMES:
        return f"outcome {row['outcome']!r} not in {_OUTCOMES}"
    for field in ("workers",):
        if row[field] < 1:
            return f"field {field!r} must be >= 1"
    for field in (
        "wall_seconds",
        "trials_per_sec",
        "trials_completed",
        "trials_failed",
        "retries",
        "respawns",
        "quarantined",
        "checkpoints_recovered",
    ):
        if row[field] < 0:
            return f"field {field!r} must be >= 0"
    return None


def append_run(path: Union[str, Path], row: Dict[str, Any]) -> Path:
    """Validate ``row`` and durably append it to the ledger at ``path``."""
    from repro.errors import ObservabilityError
    from repro.ioutil import append_jsonl_line

    problem = validate_row(row)
    if problem is not None:
        raise ObservabilityError(f"refusing to append invalid ledger row: {problem}")
    try:
        return append_jsonl_line(path, row)
    except OSError as exc:
        raise ObservabilityError(f"cannot append to run ledger {path}: {exc}") from exc


def load_runs(path: Union[str, Path]) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Ledger rows newest-first plus a list of skipped-line diagnostics.

    Unparseable or schema-invalid lines never abort the load — a ledger
    shared across versions/processes must degrade to "show what's
    valid, name what isn't".
    """
    path = Path(path)
    rows: List[Dict[str, Any]] = []
    problems: List[str] = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        from repro.errors import ObservabilityError

        raise ObservabilityError(f"cannot read run ledger {path}: {exc}") from exc
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except ValueError:
            problems.append(f"{path}:{lineno}: not valid JSON; skipped")
            continue
        problem = validate_row(row)
        if problem is not None:
            problems.append(f"{path}:{lineno}: {problem}; skipped")
            continue
        rows.append(row)
    rows.reverse()
    return rows, problems


def render_runs_table(rows: List[Dict[str, Any]]) -> str:
    """A fixed-width text table over ledger rows (newest first)."""
    header = (
        f"{'RUN':<13} {'EXPERIMENT':<12} {'SEED':>6} {'EXEC':<8} "
        f"{'W':>2} {'TRIALS':>7} {'TRIALS/S':>9} {'WALL':>8} {'OUTCOME':<7}"
    )
    lines = [header]
    for row in rows:
        seed = row["seed"] if row["seed"] is not None else "-"
        lines.append(
            f"{row['run_id']:<13} {row['experiment'][:12]:<12} {seed!s:>6} "
            f"{row['executor'][:8]:<8} {row['workers']:>2} "
            f"{row['trials_completed']:>7} {row['trials_per_sec']:>9.1f} "
            f"{row['wall_seconds']:>7.2f}s {row['outcome']:<7}"
        )
    return "\n".join(lines)
