"""Zero-dependency span tracing for the trial-execution engine.

A *span* is a named, timed section of work (``with span("trial",
trial=i): ...``) measured on :func:`time.perf_counter_ns`.  Spans nest
(a ``deploy`` span opened inside a ``trial`` span records ``trial`` as
its parent) and are thread-safe: each thread keeps its own span stack,
and finished records append to the active :class:`TraceRecorder` under
a lock.

Tracing is **off by default and near-free when disabled**: with no
active recorder, :func:`span` returns a shared no-op context manager
and records nothing — instrumented call sites pay one global read.
Nothing in this module touches random state, so traced and untraced
runs are bit-identical by construction.

Spans must also survive the process-pool boundary.  Worker processes
cannot append to the parent's recorder, so the engine's chunk runner
installs a fresh recorder per chunk, aggregates its records into a
picklable :class:`ChunkTrace` (per-span-name summaries plus per-trial
wall times), and ships that summary back with the chunk's outcomes;
the parent merges chunk traces in trial order via
:meth:`TraceRecorder.merge_chunk`.  Aggregating in the worker keeps
the payload O(span names + trials), not O(spans), and avoids
interleaving worker writes into the parent's JSONL sink.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import InvalidParameterError

__all__ = [
    "ChunkTrace",
    "Span",
    "SpanRecord",
    "SpanSummary",
    "TRIAL_SPAN",
    "TraceRecorder",
    "active_recorder",
    "recording",
    "set_recorder",
    "span",
]

#: Name of the engine's per-trial span; one of these exists per executed
#: trial whatever the executor, so ``recorder.span_count(TRIAL_SPAN)``
#: always equals the number of trials traced.
TRIAL_SPAN = "trial"

#: The process-wide active recorder (``None`` — the default — disables
#: tracing).  Worker processes start with no recorder; the chunk runner
#: installs one explicitly when the parent requests tracing.
_ACTIVE: Optional["TraceRecorder"] = None

_STACK = threading.local()


def _stack() -> List[str]:
    stack = getattr(_STACK, "names", None)
    if stack is None:
        stack = []
        _STACK.names = stack
    return stack


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    ``start_ns``/``duration_ns`` are :func:`time.perf_counter_ns`
    readings (monotonic, process-local — comparable within a run, not
    across processes).  ``trial`` is set for spans attributed to a
    specific trial index; ``attrs`` carries any further key/value
    annotations passed to :func:`span`.
    """

    name: str
    start_ns: int
    duration_ns: int
    parent: Optional[str] = None
    trial: Optional[int] = None
    attrs: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SpanSummary:
    """Aggregate statistics for one ``(name, parent)`` span population."""

    name: str
    count: int
    total_ns: int
    min_ns: int
    max_ns: int
    parent: Optional[str] = None

    def merged(self, other: "SpanSummary") -> "SpanSummary":
        """Combine two summaries of the same span population."""
        if (other.name, other.parent) != (self.name, self.parent):
            raise InvalidParameterError(
                f"cannot merge summary of {other.name!r}/{other.parent!r} "
                f"into {self.name!r}/{self.parent!r}"
            )
        return SpanSummary(
            name=self.name,
            parent=self.parent,
            count=self.count + other.count,
            total_ns=self.total_ns + other.total_ns,
            min_ns=min(self.min_ns, other.min_ns),
            max_ns=max(self.max_ns, other.max_ns),
        )


@dataclass(frozen=True)
class ChunkTrace:
    """A worker chunk's aggregated spans, shipped across the pool boundary.

    Attributes
    ----------
    trials:
        The trial indices the chunk executed, in trial order.
    wall_ns:
        Wall-clock the chunk spent executing in its worker (used for
        the report's worker-utilization estimate).
    summaries:
        Per ``(name, parent)`` aggregates of every span the chunk
        recorded.
    trial_ns:
        ``(trial, duration_ns)`` for each per-trial span, in trial
        order (feeds the slowest-trial table and the wall-time
        histogram without shipping every span record).
    """

    trials: Tuple[int, ...]
    wall_ns: int
    summaries: Tuple[SpanSummary, ...]
    trial_ns: Tuple[Tuple[int, int], ...]


class Span:
    """Context manager timing one section; records on exit.

    Created via :func:`span`; the recorder is captured at creation so a
    recorder swap mid-span cannot split the enter/exit bookkeeping.
    ``duration_ns`` is available after exit (0 before).
    """

    __slots__ = ("_recorder", "name", "trial", "attrs", "_start", "duration_ns")

    def __init__(
        self,
        recorder: "TraceRecorder",
        name: str,
        trial: Optional[int],
        attrs: Mapping[str, Any],
    ) -> None:
        self._recorder = recorder
        self.name = name
        self.trial = trial
        self.attrs = attrs
        self._start = 0
        self.duration_ns = 0

    def __enter__(self) -> "Span":
        _stack().append(self.name)
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter_ns()
        stack = _stack()
        stack.pop()
        self.duration_ns = end - self._start
        self._recorder.record(
            SpanRecord(
                name=self.name,
                start_ns=self._start,
                duration_ns=self.duration_ns,
                parent=stack[-1] if stack else None,
                trial=self.trial,
                attrs=self.attrs,
            )
        )


class _NullSpan:
    """Shared no-op span used whenever tracing is disabled."""

    __slots__ = ()
    duration_ns = 0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str, *, trial: Optional[int] = None, **attrs: Any):
    """Open a timed span (``with span("estimate", trial=i): ...``).

    With no active recorder this returns a shared no-op context
    manager — the disabled cost is one global read plus an allocation-
    free ``with`` — so instrumentation can stay permanently in place.
    """
    recorder = _ACTIVE
    if recorder is None:
        return _NULL_SPAN
    return Span(recorder, name, trial, attrs)


def active_recorder() -> Optional["TraceRecorder"]:
    """The recorder spans currently append to (``None`` = disabled)."""
    return _ACTIVE


def set_recorder(recorder: Optional["TraceRecorder"]) -> Optional["TraceRecorder"]:
    """Install ``recorder`` as the active recorder; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    return previous


class recording:
    """Context manager scoping an active recorder (restores on exit)."""

    def __init__(self, recorder: Optional["TraceRecorder"]) -> None:
        self._recorder = recorder
        self._previous: Optional[TraceRecorder] = None

    def __enter__(self) -> Optional["TraceRecorder"]:
        self._previous = set_recorder(self._recorder)
        return self._recorder

    def __exit__(self, exc_type, exc, tb) -> None:
        set_recorder(self._previous)


class TraceRecorder:
    """Thread-safe accumulator of span records and merged chunk traces.

    The parent process records spans directly (serial execution, and
    any instrumentation outside the trial loop); parallel chunks arrive
    pre-aggregated as :class:`ChunkTrace` and are merged in trial order.
    All read accessors present the union of both sources.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._chunks: List[ChunkTrace] = []

    def record(self, record: SpanRecord) -> None:
        """Append one finished span record (thread-safe)."""
        with self._lock:
            self._records.append(record)

    def merge_chunk(self, chunk: ChunkTrace) -> None:
        """Merge one worker chunk's aggregated trace (thread-safe)."""
        with self._lock:
            self._chunks.append(chunk)

    @property
    def records(self) -> Tuple[SpanRecord, ...]:
        """Spans recorded in this process, in completion order."""
        with self._lock:
            return tuple(self._records)

    @property
    def chunks(self) -> Tuple[ChunkTrace, ...]:
        """Worker chunk traces, in merge (= trial) order."""
        with self._lock:
            return tuple(self._chunks)

    def span_count(self, name: Optional[str] = None) -> int:
        """Total spans observed (direct + chunk-aggregated), by name."""
        with self._lock:
            direct = sum(
                1 for r in self._records if name is None or r.name == name
            )
            merged = sum(
                s.count
                for chunk in self._chunks
                for s in chunk.summaries
                if name is None or s.name == name
            )
        return direct + merged

    def summaries(self) -> Dict[Tuple[str, Optional[str]], SpanSummary]:
        """Merged per-``(name, parent)`` aggregates over both sources."""
        merged: Dict[Tuple[str, Optional[str]], SpanSummary] = {}

        def absorb(summary: SpanSummary) -> None:
            key = (summary.name, summary.parent)
            existing = merged.get(key)
            merged[key] = summary if existing is None else existing.merged(summary)

        with self._lock:
            for r in self._records:
                absorb(
                    SpanSummary(
                        name=r.name,
                        parent=r.parent,
                        count=1,
                        total_ns=r.duration_ns,
                        min_ns=r.duration_ns,
                        max_ns=r.duration_ns,
                    )
                )
            for chunk in self._chunks:
                for summary in chunk.summaries:
                    absorb(summary)
        return merged

    def trial_durations(self) -> List[Tuple[int, int]]:
        """``(trial, duration_ns)`` for every per-trial span, trial order."""
        durations: List[Tuple[int, int]] = []
        with self._lock:
            durations.extend(
                (r.trial, r.duration_ns)
                for r in self._records
                if r.name == TRIAL_SPAN and r.trial is not None
            )
            for chunk in self._chunks:
                durations.extend(chunk.trial_ns)
        durations.sort(key=lambda pair: pair[0])
        return durations

    def to_chunk(self, trials: Tuple[int, ...], wall_ns: int) -> ChunkTrace:
        """Aggregate this recorder's records into a picklable chunk trace."""
        summaries = self.summaries()
        with self._lock:
            trial_ns = tuple(
                (r.trial, r.duration_ns)
                for r in self._records
                if r.name == TRIAL_SPAN and r.trial is not None
            )
        return ChunkTrace(
            trials=tuple(trials),
            wall_ns=wall_ns,
            summaries=tuple(summaries.values()),
            trial_ns=trial_ns,
        )

    def iter_summary_rows(self) -> Iterator[SpanSummary]:
        """Merged summaries ordered by total time, descending."""
        for summary in sorted(
            self.summaries().values(), key=lambda s: -s.total_ns
        ):
            yield summary
