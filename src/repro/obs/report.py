"""Run reports: summarize a trace JSONL file into throughput numbers.

:func:`load_trace` parses the JSONL file written by
:class:`repro.obs.ObsContext` (manifest, events, span summaries,
per-trial wall times, chunk traces, optional metrics snapshot) into a
:class:`TraceData`; :func:`build_report` reduces that to the numbers an
operator compares across runs — trials/sec, wall vs. CPU time, a
worker-utilization estimate, retry/fallback and checkpoint counts, the
span-time breakdown and a slowest-trial table — rendered as text
(:meth:`RunReport.render_text`) or JSON (:meth:`RunReport.to_json`).

The worker-utilization estimate divides the wall-clock the chunks spent
busy inside workers by ``workers x run wall``: 1.0 means every worker
was busy for the whole sweep, lower values mean dispatch overhead or
load imbalance.  It is an estimate — chunk wall includes per-chunk
setup, and the parent's own span time is not subtracted.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ObservabilityError

__all__ = [
    "RunReport",
    "TRACE_FORMAT",
    "TraceData",
    "build_report",
    "load_trace",
]

#: Schema tag the trace manifest must carry.
TRACE_FORMAT = "fullview-trace-v1"

#: Line kinds a trace file may contain.
_KINDS = ("manifest", "event", "span_summary", "trial", "chunk", "metrics")

#: Rows in the slowest-trial table.
_SLOWEST = 5


@dataclass(frozen=True)
class TraceData:
    """A parsed trace file, one attribute per line kind."""

    manifest: Mapping[str, Any]
    events: Tuple[Mapping[str, Any], ...]
    span_summaries: Tuple[Mapping[str, Any], ...]
    trials: Tuple[Tuple[int, int], ...]
    chunks: Tuple[Mapping[str, Any], ...]
    metrics: Optional[Mapping[str, Any]] = None


def load_trace(path: Union[str, Path]) -> TraceData:
    """Parse a trace JSONL file, validating the manifest and line kinds."""
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise ObservabilityError(f"cannot read trace {path}: {exc}") from exc
    manifest: Optional[Mapping[str, Any]] = None
    events: List[Mapping[str, Any]] = []
    span_summaries: List[Mapping[str, Any]] = []
    trials: List[Tuple[int, int]] = []
    chunks: List[Mapping[str, Any]] = []
    metrics: Optional[Mapping[str, Any]] = None
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except ValueError as exc:
            raise ObservabilityError(
                f"{path}:{number}: not valid JSON: {exc}"
            ) from exc
        kind = row.get("kind") if isinstance(row, dict) else None
        if kind not in _KINDS:
            raise ObservabilityError(
                f"{path}:{number}: unknown trace line kind {kind!r}"
            )
        if kind == "manifest":
            if row.get("format") != TRACE_FORMAT:
                raise ObservabilityError(
                    f"{path}:{number}: manifest format is "
                    f"{row.get('format')!r}, expected {TRACE_FORMAT!r}"
                )
            manifest = row
        elif kind == "event":
            events.append(row)
        elif kind == "span_summary":
            span_summaries.append(row)
        elif kind == "trial":
            trials.append((int(row["trial"]), int(row["dur_ns"])))
        elif kind == "chunk":
            chunks.append(row)
        else:
            metrics = row.get("snapshot")
    if manifest is None:
        raise ObservabilityError(f"{path}: no manifest line (is this a trace?)")
    return TraceData(
        manifest=manifest,
        events=tuple(events),
        span_summaries=tuple(span_summaries),
        trials=tuple(sorted(trials)),
        chunks=tuple(chunks),
        metrics=metrics,
    )


def _percentile_ms(sorted_ns: List[int], q: float) -> float:
    """Nearest-rank percentile of ascending durations, in milliseconds."""
    rank = max(1, math.ceil(q / 100.0 * len(sorted_ns)))
    return sorted_ns[min(rank, len(sorted_ns)) - 1] / 1e6


@dataclass(frozen=True)
class RunReport:
    """The derived summary of one trace file."""

    manifest: Mapping[str, Any]
    runs: int
    trials_completed: int
    trials_failed: int
    wall_seconds: float
    cpu_seconds: float
    trials_per_second: float
    workers: int
    worker_utilization: Optional[float]
    chunks_dispatched: int
    chunk_fallbacks: int
    checkpoints_written: int
    epochs_advanced: int
    chunks_retried: int = 0
    pools_respawned: int = 0
    trials_quarantined: int = 0
    checkpoints_recovered: int = 0
    trial_p50_ms: Optional[float] = None
    trial_p90_ms: Optional[float] = None
    trial_p99_ms: Optional[float] = None
    span_rows: Tuple[Mapping[str, Any], ...] = ()
    slowest_trials: Tuple[Tuple[int, int], ...] = ()
    counters: Mapping[str, int] = field(default_factory=dict)

    def to_json(self) -> str:
        """The report as a JSON document."""
        payload = {
            "manifest": dict(self.manifest),
            "runs": self.runs,
            "trials_completed": self.trials_completed,
            "trials_failed": self.trials_failed,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "trials_per_second": self.trials_per_second,
            "workers": self.workers,
            "worker_utilization": self.worker_utilization,
            "chunks_dispatched": self.chunks_dispatched,
            "chunk_fallbacks": self.chunk_fallbacks,
            "checkpoints_written": self.checkpoints_written,
            "epochs_advanced": self.epochs_advanced,
            "chunks_retried": self.chunks_retried,
            "pools_respawned": self.pools_respawned,
            "trials_quarantined": self.trials_quarantined,
            "checkpoints_recovered": self.checkpoints_recovered,
            "trial_latency_ms": {
                "p50": self.trial_p50_ms,
                "p90": self.trial_p90_ms,
                "p99": self.trial_p99_ms,
            },
            "spans": [dict(row) for row in self.span_rows],
            "slowest_trials": [
                {"trial": trial, "dur_ns": dur} for trial, dur in self.slowest_trials
            ],
            "counters": dict(self.counters),
        }
        return json.dumps(payload, indent=2)

    def render_text(self) -> str:
        """The report as a human-readable block."""
        meta = self.manifest.get("meta", {})
        lines = [
            f"== fullview run report ({self.manifest.get('version', '?')}) ==",
        ]
        if meta:
            described = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
            lines.append(f"run: {described}")
        lines += [
            f"sweeps: {self.runs} | trials: {self.trials_completed} completed, "
            f"{self.trials_failed} failed",
            f"wall: {self.wall_seconds:.3f} s | parent CPU: "
            f"{self.cpu_seconds:.3f} s | throughput: "
            f"{self.trials_per_second:.1f} trials/s",
        ]
        if self.workers > 1:
            utilization = (
                f"{self.worker_utilization:.0%}"
                if self.worker_utilization is not None
                else "n/a"
            )
            lines.append(
                f"workers: {self.workers} | chunks: {self.chunks_dispatched} "
                f"dispatched, {self.chunk_fallbacks} fell back | estimated "
                f"utilization: {utilization}"
            )
        else:
            lines.append("workers: 1 (serial)")
        lines.append(
            f"checkpoints written: {self.checkpoints_written} | lifetime "
            f"epochs advanced: {self.epochs_advanced}"
        )
        faults = (
            self.chunks_retried
            + self.pools_respawned
            + self.trials_quarantined
            + self.checkpoints_recovered
        )
        if faults:
            lines.append(
                f"fault handling: {self.chunks_retried} chunk retries, "
                f"{self.pools_respawned} pool respawns, "
                f"{self.trials_quarantined} trials quarantined, "
                f"{self.checkpoints_recovered} checkpoints recovered"
            )
        if self.span_rows:
            labels = [
                row["name"] + (f" <{row['parent']}" if row.get("parent") else "")
                for row in self.span_rows
            ]
            width = max(16, *(len(label) for label in labels))
            lines.append("")
            lines.append("span breakdown (total time, descending):")
            lines.append(f"  {'name':<{width}} count      total_ms     mean_us")
            for label, row in zip(labels, self.span_rows):
                total_ms = row["total_ns"] / 1e6
                mean_us = row["total_ns"] / max(1, row["count"]) / 1e3
                lines.append(
                    f"  {label:<{width}} {row['count']:>5} {total_ms:>13.3f} "
                    f"{mean_us:>11.1f}"
                )
        if self.trial_p50_ms is not None:
            lines.append(
                f"trial latency: p50 {self.trial_p50_ms:.3f} ms | "
                f"p90 {self.trial_p90_ms:.3f} ms | p99 {self.trial_p99_ms:.3f} ms"
            )
        if self.slowest_trials:
            lines.append("")
            lines.append("slowest trials:")
            for trial, dur in self.slowest_trials:
                lines.append(f"  trial {trial:>6}: {dur / 1e6:.3f} ms")
        if self.counters:
            lines.append("")
            lines.append("counters:")
            for name, value in sorted(self.counters.items()):
                lines.append(f"  {name}: {value}")
        return "\n".join(lines)


def build_report(data: TraceData) -> RunReport:
    """Reduce parsed trace data to a :class:`RunReport`."""
    completed = failed = runs = 0
    wall_ns = cpu_ns = 0
    workers = 1
    chunks_dispatched = fallbacks = checkpoints = epochs = 0
    retried = respawned = quarantined = recovered = 0
    for event in data.events:
        name = event.get("event")
        if name == "RunStarted":
            workers = max(workers, int(event.get("workers", 1)))
        elif name == "RunFinished":
            runs += 1
            completed += int(event.get("completed", 0))
            failed += int(event.get("failed", 0))
            wall_ns += int(event.get("wall_ns", 0))
            cpu_ns += int(event.get("cpu_ns", 0))
        elif name == "ChunkDispatched":
            chunks_dispatched += 1
        elif name == "ChunkFellBack":
            fallbacks += 1
        elif name == "ChunkRetried":
            retried += 1
        elif name == "PoolRespawned":
            respawned += 1
        elif name == "TrialQuarantined":
            quarantined += 1
        elif name == "CheckpointWritten":
            checkpoints += 1
        elif name == "CheckpointRecovered":
            recovered += 1
        elif name == "EpochAdvanced":
            epochs += 1
    # Without Run events (e.g. a truncated trace) fall back to the
    # event clock: monotonic t_ns of the first and last events.
    if wall_ns <= 0 and len(data.events) >= 2:
        wall_ns = int(data.events[-1]["t_ns"]) - int(data.events[0]["t_ns"])
    if completed <= 0:
        completed = len(data.trials)
    wall_seconds = wall_ns / 1e9
    throughput = completed / wall_seconds if wall_seconds > 0 else 0.0
    utilization: Optional[float] = None
    if workers > 1 and data.chunks and wall_ns > 0:
        busy = sum(int(chunk.get("wall_ns", 0)) for chunk in data.chunks)
        utilization = min(1.0, busy / (workers * wall_ns))
    slowest = tuple(
        sorted(data.trials, key=lambda pair: -pair[1])[:_SLOWEST]
    )
    p50 = p90 = p99 = None
    if data.trials:
        durations = sorted(dur for _trial, dur in data.trials)
        p50, p90, p99 = (
            _percentile_ms(durations, q) for q in (50.0, 90.0, 99.0)
        )
    span_rows = tuple(
        sorted(data.span_summaries, key=lambda row: -int(row.get("total_ns", 0)))
    )
    counters: Dict[str, int] = {}
    if data.metrics:
        counters = {
            str(k): int(v) for k, v in data.metrics.get("counters", {}).items()
        }
    return RunReport(
        manifest=data.manifest,
        runs=runs,
        trials_completed=completed,
        trials_failed=failed,
        wall_seconds=wall_seconds,
        cpu_seconds=cpu_ns / 1e9,
        trials_per_second=throughput,
        workers=workers,
        worker_utilization=utilization,
        chunks_dispatched=chunks_dispatched,
        chunk_fallbacks=fallbacks,
        checkpoints_written=checkpoints,
        epochs_advanced=epochs,
        chunks_retried=retried,
        pools_respawned=respawned,
        trials_quarantined=quarantined,
        checkpoints_recovered=recovered,
        trial_p50_ms=p50,
        trial_p90_ms=p90,
        trial_p99_ms=p99,
        span_rows=span_rows,
        slowest_trials=slowest,
        counters=counters,
    )
