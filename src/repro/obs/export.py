"""Trace/metrics exporters: Chrome trace-event JSON, flamegraph, Prometheus.

Three read-side converters over the artifacts :class:`repro.obs.ObsContext`
writes, surfaced as ``fullview report PATH --format chrome|flamegraph|prom``:

- :func:`chrome_trace` — the trace as Chrome/Perfetto *trace event*
  objects (the JSON-array flavour ``chrome://tracing`` and
  https://ui.perfetto.dev load directly): chunk executions become ``X``
  duration events laid out on per-worker tracks, per-trial wall times
  nest inside their owning chunk, lifecycle events become ``i``
  instants and ``RunProgress`` heartbeats a ``C`` counter track.
- :func:`flamegraph_lines` — the span summaries as collapsed-stack
  text (``parent;child <self_time_us>`` per line), the input format of
  Brendan Gregg's ``flamegraph.pl`` and of speedscope.  Values are
  *self* time: each row's total minus its children's totals, clamped
  at zero, so the flame widths add up instead of double-counting.
- :func:`prometheus_lines` — the metrics snapshot in Prometheus text
  exposition format (counters as ``_total``, histograms as cumulative
  ``_bucket{le=...}`` series), ready for the node-exporter textfile
  collector or a future service ``/metrics`` endpoint.

All exporters are pure functions of parsed :class:`~repro.obs.report.TraceData`
— they never re-open the run — and degrade gracefully on empty traces
(a zero-trial run exports an empty-but-valid document in every format).
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.report import TraceData

__all__ = [
    "EXPORT_FORMATS",
    "chrome_trace",
    "chrome_trace_json",
    "export_trace",
    "flamegraph_lines",
    "prometheus_lines",
]

#: Formats :func:`export_trace` understands.
EXPORT_FORMATS = ("chrome", "flamegraph", "prom")

#: Trace-event keys every emitted event carries (pid is constant: one
#: run is one process from the viewer's perspective).
_PID = 1

#: Event-payload keys that are envelope, not arguments.
_ENVELOPE_KEYS = frozenset({"kind", "event", "seq", "t_ns"})

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


# ----------------------------------------------------------------------
# Chrome / Perfetto trace events


def _worker_count(data: TraceData) -> int:
    workers = 1
    for event in data.events:
        if event.get("event") == "RunStarted":
            workers = max(workers, int(event.get("workers", 1)))
    return workers


def chrome_trace(data: TraceData) -> List[Dict[str, Any]]:
    """The trace as a list of Chrome trace-event objects.

    Timestamps are microseconds relative to the first recorded event
    (the format's native unit).  Chunk rows carry only durations, not
    start times, so chunk placement is a *reconstruction*: chunks are
    laid onto ``workers`` tracks greedily in dispatch order, each
    starting at the later of its dispatch instant and its track's free
    time — the same earliest-free-worker discipline the pool itself
    uses.  Per-trial spans are packed sequentially inside their owning
    chunk's window (serial trials onto the main track), so relative
    widths are exact even where absolute starts are estimates.
    """
    base_ns = min(
        (int(event["t_ns"]) for event in data.events if "t_ns" in event),
        default=0,
    )

    def ts(t_ns: int) -> float:
        return (t_ns - base_ns) / 1e3

    out: List[Dict[str, Any]] = []
    used_tids = {0}

    for event in data.events:
        name = event.get("event", "event")
        args = {
            key: value
            for key, value in event.items()
            if key not in _ENVELOPE_KEYS
        }
        stamp = ts(int(event.get("t_ns", base_ns)))
        if name == "RunProgress":
            out.append(
                {
                    "name": "trials_done",
                    "ph": "C",
                    "ts": stamp,
                    "pid": _PID,
                    "tid": 0,
                    "args": {"done": int(event.get("done", 0))},
                }
            )
        else:
            out.append(
                {
                    "name": name,
                    "ph": "i",
                    "ts": stamp,
                    "pid": _PID,
                    "tid": 0,
                    "s": "p",
                    "args": args,
                }
            )

    # Dispatch instants by first trial, for chunk placement.
    dispatch_ts: Dict[int, float] = {}
    for event in data.events:
        if event.get("event") == "ChunkDispatched":
            dispatch_ts.setdefault(
                int(event.get("first_trial", -1)), ts(int(event["t_ns"]))
            )

    workers = _worker_count(data)
    track_free = [0.0] * max(1, workers)
    chunk_window: Dict[Tuple[int, int], Tuple[float, int]] = {}
    ordered_chunks = sorted(
        data.chunks,
        key=lambda chunk: dispatch_ts.get(int(chunk.get("first_trial", -1)), 0.0),
    )
    for chunk in ordered_chunks:
        first = int(chunk.get("first_trial", -1))
        count = int(chunk.get("trials", 0))
        dur_us = int(chunk.get("wall_ns", 0)) / 1e3
        earliest = dispatch_ts.get(first, 0.0)
        track = min(range(len(track_free)), key=track_free.__getitem__)
        start = max(earliest, track_free[track])
        track_free[track] = start + dur_us
        tid = track + 1
        used_tids.add(tid)
        chunk_window[(first, count)] = (start, tid)
        out.append(
            {
                "name": f"chunk[{first}..{first + count})",
                "ph": "X",
                "ts": start,
                "dur": dur_us,
                "pid": _PID,
                "tid": tid,
                "args": {"first_trial": first, "trials": count},
            }
        )

    # Per-trial spans: inside the owning chunk's window, else packed
    # sequentially on the main track (the serial executor's shape).
    windows = sorted(chunk_window.items())
    cursor_by_key: Dict[Tuple[int, int], float] = {
        key: start for key, (start, _) in chunk_window.items()
    }
    serial_cursor = 0.0
    for trial, dur_ns in data.trials:
        dur_us = dur_ns / 1e3
        owner: Optional[Tuple[int, int]] = None
        for (first, count), _window in windows:
            if first <= trial < first + count:
                owner = (first, count)
                break
        if owner is not None:
            start = cursor_by_key[owner]
            cursor_by_key[owner] = start + dur_us
            tid = chunk_window[owner][1]
        else:
            start = serial_cursor
            serial_cursor = start + dur_us
            tid = 0
        out.append(
            {
                "name": f"trial {trial}",
                "ph": "X",
                "ts": start,
                "dur": dur_us,
                "pid": _PID,
                "tid": tid,
                "args": {"trial": trial},
            }
        )

    meta = data.manifest.get("meta", {}) if isinstance(data.manifest, dict) else {}
    process_name = str(meta.get("command", "fullview run"))
    out.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": f"fullview {process_name}"},
        }
    )
    for tid in sorted(used_tids):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": "main" if tid == 0 else f"worker-{tid}"},
            }
        )
    return out


def chrome_trace_json(data: TraceData) -> str:
    """:func:`chrome_trace` serialized as the JSON-array file format."""
    return json.dumps(chrome_trace(data), indent=1)


# ----------------------------------------------------------------------
# Collapsed-stack flamegraph


def flamegraph_lines(data: TraceData) -> List[str]:
    """Collapsed-stack lines (``a;b;c <self_us>``) from span summaries.

    Span summaries are aggregated ``(name, parent)`` rows, so the stack
    for a row is recovered by walking the parent chain (first-seen
    parent per name; cycle-guarded).  Values are self time in integer
    microseconds — total minus the totals of direct children — clamped
    at zero so reconstruction error never produces negative widths.
    """
    rows = list(data.span_summaries)
    parent_of: Dict[str, Optional[str]] = {}
    children_total: Dict[str, int] = {}
    for row in rows:
        name = str(row.get("name", "?"))
        parent = row.get("parent")
        parent_of.setdefault(name, parent)
        if parent:
            children_total[str(parent)] = children_total.get(
                str(parent), 0
            ) + int(row.get("total_ns", 0))

    lines: List[str] = []
    for row in rows:
        name = str(row.get("name", "?"))
        self_ns = max(0, int(row.get("total_ns", 0)) - children_total.get(name, 0))
        self_us = self_ns // 1000
        if self_us <= 0:
            continue
        stack = [name]
        seen = {name}
        cursor = row.get("parent")
        while cursor and cursor not in seen:
            cursor = str(cursor)
            stack.append(cursor)
            seen.add(cursor)
            cursor = parent_of.get(cursor)
        lines.append(";".join(reversed(stack)) + f" {self_us}")
    return sorted(lines)


# ----------------------------------------------------------------------
# Prometheus text exposition


def _prom_name(name: str) -> str:
    return _PROM_NAME_RE.sub("_", name)


def _prom_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def prometheus_lines(snapshot: Optional[Mapping[str, Any]]) -> List[str]:
    """The metrics snapshot as Prometheus text-exposition lines.

    Counters become ``fullview_<name>_total``, gauges keep their name,
    histograms expand to the conventional cumulative ``_bucket{le=...}``
    series plus ``_sum``/``_count``.  A trace with no snapshot exports
    a single explanatory comment — still a valid exposition document.
    """
    if not snapshot:
        return ["# no metrics snapshot in trace"]
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = f"fullview_{_prom_name(str(name))}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(float(value))}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = f"fullview_{_prom_name(str(name))}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(float(value))}")
    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        metric = f"fullview_{_prom_name(str(name))}"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        buckets = hist.get("buckets", [])
        counts = hist.get("counts", [])
        for bound, count in zip(buckets, counts):
            cumulative += int(count)
            lines.append(f'{metric}_bucket{{le="{bound:g}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {int(hist.get("count", 0))}')
        lines.append(f"{metric}_sum {repr(float(hist.get('total', 0.0)))}")
        lines.append(f"{metric}_count {int(hist.get('count', 0))}")
    return lines


def export_trace(data: TraceData, fmt: str) -> str:
    """Render ``data`` in one of :data:`EXPORT_FORMATS`."""
    if fmt == "chrome":
        return chrome_trace_json(data)
    if fmt == "flamegraph":
        return "\n".join(flamegraph_lines(data))
    if fmt == "prom":
        return "\n".join(prometheus_lines(data.metrics))
    raise ObservabilityError(
        f"unknown export format {fmt!r}; expected one of {EXPORT_FORMATS}"
    )
