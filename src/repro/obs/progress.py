"""Live run progress: throttled heartbeats, EWMA throughput, ETA, status.

The rest of :mod:`repro.obs` is a flight recorder — spans, events and
metrics are written as they happen but only *consumable* after the run.
This module is the cockpit view: a thread-safe :class:`ProgressTracker`
fed by the executors **parent-side** (on every yielded batch, so no new
state ever crosses the worker seam) that emits throttled
:class:`~repro.obs.events.RunProgress` heartbeat events into the trace
JSONL and, optionally, keeps a small live *status file* up to date via
atomic replacement — the file ``fullview watch`` tails.

Each heartbeat carries the sweep position (trials done/total/failed), a
trials/sec EWMA, the derived ETA and the fault-handling tallies
(retries, respawns, quarantines, fallbacks, epochs).  Heartbeats are
throttled to at most one per ``heartbeat_seconds`` except at forced
moments (sweep begin/finish and final close), so telemetry cost stays
bounded however many trials complete per second; totals accumulate
across sweeps under one tracker, so ``done`` is monotone over a whole
multi-experiment command.

Like tracing, metrics and events, progress is **off by default**: the
process-wide active tracker is ``None``, instrumented call sites guard
on :func:`active_progress`, and the disabled cost is one global read.
Nothing here touches random state — progress-tracked and untracked
runs are bit-identical (pinned in ``tests/obs/test_identity.py``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import InvalidParameterError
from repro.obs.events import RunProgress, active_event_log

__all__ = [
    "DEFAULT_HEARTBEAT_SECONDS",
    "NOTE_KINDS",
    "ProgressTracker",
    "STATUS_FORMAT",
    "active_progress",
    "progress_scope",
    "set_progress",
]

#: Schema tag written into every live status file.
STATUS_FORMAT = "fullview-status-v1"

#: Default minimum spacing between heartbeats (seconds).
DEFAULT_HEARTBEAT_SECONDS = 0.5

#: Fault/lifecycle tallies a tracker accumulates via :meth:`ProgressTracker.note`.
NOTE_KINDS = ("retries", "respawns", "quarantined", "fallbacks", "epochs")

#: EWMA smoothing factor for the instantaneous trials/sec estimate.
_EWMA_ALPHA = 0.3

#: Clock checks per heartbeat window.  ``advance`` only consults the
#: clock every *stride* trials, with the stride sized so roughly this
#: many checks land inside one ``heartbeat_seconds`` interval — cheap
#: trials amortise the clock away, slow trials degrade to a check per
#: advance and heartbeats still land on time.
_CHECKS_PER_HEARTBEAT = 8

#: The process-wide active tracker (``None`` — the default — disables
#: progress; call sites guard on :func:`active_progress`).
_ACTIVE: Optional["ProgressTracker"] = None


class ProgressTracker:
    """Run-progress accumulator with throttled emission.

    Concurrency contract: *single producer, any readers*.  The feed
    methods (:meth:`begin`/:meth:`advance`/:meth:`note`/:meth:`finish`)
    are called from the one parent thread draining executor batches;
    the read side (:meth:`snapshot`, the properties, a ``watch``
    follower) is safe from any thread at any time.

    Parameters
    ----------
    status_path:
        Optional live status file; every heartbeat atomically replaces
        it with a ``fullview-status-v1`` JSON document (rename-based,
        so a reader can never observe a torn status).
    heartbeat_seconds:
        Minimum spacing between non-forced heartbeats.
    run_id:
        Identifier stamped into the status file (usually the owning
        :class:`~repro.obs.ObsContext`'s run id).
    """

    def __init__(
        self,
        status_path: Optional[Union[str, Path]] = None,
        heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS,
        run_id: Optional[str] = None,
    ) -> None:
        if heartbeat_seconds < 0.0:
            raise InvalidParameterError(
                f"heartbeat_seconds must be >= 0, got {heartbeat_seconds!r}"
            )
        self.status_path = Path(status_path) if status_path is not None else None
        self.heartbeat_seconds = float(heartbeat_seconds)
        self.run_id = run_id
        self._lock = threading.Lock()
        self._total = 0
        self._done = 0
        self._failed = 0
        self._notes: Dict[str, int] = {kind: 0 for kind in NOTE_KINDS}
        self._rate: Optional[float] = None
        self._started_ns = time.perf_counter_ns()
        self._last_check_ns = self._started_ns
        self._last_check_done = 0
        self._next_check_done = 1
        self._last_emit_ns: Optional[int] = None
        self._last_status_ns: Optional[int] = None
        self._heartbeats = 0
        self._finished = False

    # ------------------------------------------------------------------
    # feeding (executors / runner, parent-side only)

    def begin(self, trials: int) -> None:
        """A sweep of ``trials`` started; totals accumulate across sweeps."""
        if trials < 0:
            raise InvalidParameterError(f"trials must be >= 0, got {trials!r}")
        with self._lock:
            self._total += trials
        self._emit(force=True)

    def advance(self, count: int, failed: int = 0) -> None:
        """``count`` trials completed (``failed`` of them with errors).

        The hot path is count bookkeeping only: the clock, the EWMA and
        the heartbeat throttle run every *stride* trials (sized from the
        observed rate, see :data:`_CHECKS_PER_HEARTBEAT`), so a sweep of
        microsecond-cheap trials pays integer adds per batch, not clock
        reads.
        """
        if count <= 0:
            return
        # Lock-free fast path: the feed is single-producer (executors
        # advance parent-side, from the one thread draining batches), so
        # plain increments cannot race each other; concurrent *readers*
        # see either the old or the new count, never a torn one.
        self._done += count
        if failed:
            self._failed += failed
        if self._done < self._next_check_done:
            return
        with self._lock:
            now = time.perf_counter_ns()
            elapsed = now - self._last_check_ns
            advanced = self._done - self._last_check_done
            if elapsed > 0 and advanced > 0:
                instantaneous = advanced / (elapsed / 1e9)
                self._rate = (
                    instantaneous
                    if self._rate is None
                    else _EWMA_ALPHA * instantaneous + (1.0 - _EWMA_ALPHA) * self._rate
                )
            self._last_check_ns = now
            self._last_check_done = self._done
            stride = 1
            if self._rate is not None and self.heartbeat_seconds > 0.0:
                stride = max(
                    1,
                    int(self._rate * self.heartbeat_seconds / _CHECKS_PER_HEARTBEAT),
                )
            self._next_check_done = self._done + stride
        self._emit()

    def note(self, kind: str, count: int = 1) -> None:
        """Tally one fault-handling/lifecycle moment (see :data:`NOTE_KINDS`)."""
        if kind not in self._notes:
            raise InvalidParameterError(
                f"unknown progress note kind {kind!r}; known: {NOTE_KINDS}"
            )
        with self._lock:
            self._notes[kind] += count
        self._emit()

    def finish(self) -> None:
        """A sweep completed; force one heartbeat at the boundary."""
        self._emit(force=True)

    def close(self) -> None:
        """The whole run is over: final forced heartbeat, status ``finished``."""
        with self._lock:
            self._finished = True
        self._emit(force=True)

    # ------------------------------------------------------------------
    # reading

    @property
    def done(self) -> int:
        """Trials completed so far (monotone, across sweeps)."""
        with self._lock:
            return self._done

    @property
    def total(self) -> int:
        """Trials requested so far (accumulated across sweeps)."""
        with self._lock:
            return self._total

    @property
    def heartbeats(self) -> int:
        """Heartbeats emitted (events and/or status writes)."""
        with self._lock:
            return self._heartbeats

    def eta_seconds(self) -> Optional[float]:
        """Estimated seconds to completion (``None`` before a rate exists)."""
        with self._lock:
            return self._eta_locked()

    def _eta_locked(self) -> Optional[float]:
        remaining = self._total - self._done
        if remaining <= 0:
            return 0.0
        if self._rate is None or self._rate <= 0.0:
            return None
        return remaining / self._rate

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready ``fullview-status-v1`` view of the tracker state."""
        with self._lock:
            return {
                "format": STATUS_FORMAT,
                "run_id": self.run_id,
                "state": "finished" if self._finished else "running",
                "done": self._done,
                "total": self._total,
                "failed": self._failed,
                "trials_per_sec": self._rate if self._rate is not None else 0.0,
                "eta_seconds": self._eta_locked(),
                "elapsed_seconds": (
                    (time.perf_counter_ns() - self._started_ns) / 1e9
                ),
                "heartbeats": self._heartbeats,
                "updated_unix": time.time(),
                **dict(self._notes),
            }

    # ------------------------------------------------------------------
    # emission

    def _emit(self, force: bool = False) -> None:
        now = time.perf_counter_ns()
        with self._lock:
            if (
                not force
                and self._last_emit_ns is not None
                and now - self._last_emit_ns < self.heartbeat_seconds * 1e9
            ):
                return
            self._last_emit_ns = now
            self._heartbeats += 1
            # The status file has its own, stricter throttle: a rename
            # costs real milliseconds on some filesystems, so forced
            # *event* heartbeats (every sweep begin/finish) don't each
            # rewrite it.  It is written on the first heartbeat, at the
            # final close (``state: finished`` must land), and otherwise
            # at most once per heartbeat interval.
            write_status = self.status_path is not None and (
                self._finished
                or self._last_status_ns is None
                or now - self._last_status_ns >= self.heartbeat_seconds * 1e9
            )
            if write_status:
                self._last_status_ns = now
            event = RunProgress(
                done=self._done,
                total=self._total,
                failed=self._failed,
                trials_per_sec=self._rate if self._rate is not None else 0.0,
                eta_seconds=self._eta_locked(),
                retries=self._notes["retries"],
                respawns=self._notes["respawns"],
                quarantined=self._notes["quarantined"],
                fallbacks=self._notes["fallbacks"],
                epochs=self._notes["epochs"],
            )
        log = active_event_log()
        if log is not None:
            log.emit(event)
        if write_status:
            self._write_status()

    def _write_status(self) -> None:
        # Atomic rename so a reader never sees a torn document — but no
        # fsync: the status file is advisory and goes stale the moment
        # the run dies, while an fsync costs milliseconds per heartbeat.
        self.status_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.status_path.with_suffix(self.status_path.suffix + ".tmp")
        tmp.write_text(json.dumps(self.snapshot()), encoding="utf-8")
        os.replace(tmp, self.status_path)


def active_progress() -> Optional[ProgressTracker]:
    """The tracker progress currently feeds (``None`` = disabled)."""
    return _ACTIVE


def set_progress(tracker: Optional[ProgressTracker]) -> Optional[ProgressTracker]:
    """Install ``tracker`` as the active tracker; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracker
    return previous


class progress_scope:
    """Context manager scoping an active tracker (restores on exit)."""

    def __init__(self, tracker: Optional[ProgressTracker]) -> None:
        self._tracker = tracker
        self._previous: Optional[ProgressTracker] = None

    def __enter__(self) -> Optional[ProgressTracker]:
        self._previous = set_progress(self._tracker)
        return self._tracker

    def __exit__(self, exc_type, exc, tb) -> None:
        set_progress(self._previous)
