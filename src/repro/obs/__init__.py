"""``repro.obs`` — structured run telemetry for the Monte-Carlo engine.

Four zero-dependency pieces, all off by default and near-free when
disabled:

- :mod:`repro.obs.trace` — nested, thread-safe spans on
  ``time.perf_counter_ns`` whose records survive the process-pool
  boundary as per-chunk aggregates;
- :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms with a durable atomic JSON snapshot exporter;
- :mod:`repro.obs.events` — typed lifecycle events appended to a JSONL
  sink with sequence numbers and monotonic timestamps;
- :mod:`repro.obs.report` — a run-report builder (trials/sec, wall vs.
  CPU, worker utilization, fallback counts, slowest trials) over the
  trace file.

PR 9 adds the live layer on top of the same substrate:

- :mod:`repro.obs.progress` — a thread-safe progress tracker fed
  parent-side by the executors, emitting throttled ``RunProgress``
  heartbeats and an atomically-replaced live status file;
- :mod:`repro.obs.ledger` — a persistent append-only run ledger
  (one ``fullview-ledger-v1`` row per observed run);
- :mod:`repro.obs.export` — Chrome-trace / flamegraph / Prometheus
  exporters over recorded artifacts.

:class:`ObsContext` (usually via :func:`observe`) bundles the
collectors, installs them as the process-wide actives, and on exit
writes the trace JSONL (manifest first, then events as they happened,
then span/trial/chunk summaries and a metrics snapshot), the metrics
JSON, the final ``finished`` status and the ledger row.
Instrumentation never touches random state: traced and untraced runs
produce bit-identical trial outcomes.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO, Any, Dict, Mapping, Optional, Union

from repro._version import __version__
from repro.errors import ObservabilityError
from repro.obs.events import EventLog, event_scope, set_event_log
from repro.obs.ledger import (
    LEDGER_FORMAT,
    append_run,
    git_sha,
    new_run_id,
)
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.obs.progress import (
    DEFAULT_HEARTBEAT_SECONDS,
    ProgressTracker,
    set_progress,
)
from repro.obs.report import TRACE_FORMAT
from repro.obs.trace import TraceRecorder, recording, set_recorder, span
from repro.ioutil import config_digest

__all__ = [
    "ObsContext",
    "obs_self_check",
    "observe",
]

#: Span iterations used by the self-check's overhead estimate.
_SELF_CHECK_SPANS = 20_000


class ObsContext:
    """One run's telemetry: recorder + metrics + event log + sinks.

    Entering installs the collectors as the process-wide actives (the
    previous actives are restored on exit, so contexts nest).  On exit
    the trace JSONL gains the span summaries, per-trial wall times,
    chunk traces and a metrics snapshot, and the metrics JSON is
    exported durably.  A context created with neither sink is inert:
    entering it changes nothing, so call sites need no conditionals.
    """

    def __init__(
        self,
        trace_path: Optional[Union[str, Path]] = None,
        metrics_path: Optional[Union[str, Path]] = None,
        meta: Optional[Mapping[str, Any]] = None,
        status_path: Optional[Union[str, Path]] = None,
        ledger_path: Optional[Union[str, Path]] = None,
        heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS,
    ) -> None:
        self.trace_path = Path(trace_path) if trace_path is not None else None
        self.metrics_path = Path(metrics_path) if metrics_path is not None else None
        self.status_path = Path(status_path) if status_path is not None else None
        self.ledger_path = Path(ledger_path) if ledger_path is not None else None
        self.meta: Dict[str, Any] = dict(meta or {})
        self.enabled = any(
            sink is not None
            for sink in (
                self.trace_path,
                self.metrics_path,
                self.status_path,
                self.ledger_path,
            )
        )
        self.run_id: Optional[str] = new_run_id() if self.enabled else None
        self.recorder: Optional[TraceRecorder] = (
            TraceRecorder() if self.enabled else None
        )
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if self.enabled else None
        )
        self.progress: Optional[ProgressTracker] = (
            ProgressTracker(
                status_path=self.status_path,
                heartbeat_seconds=heartbeat_seconds,
                run_id=self.run_id,
            )
            if self.enabled
            else None
        )
        self.event_log: Optional[EventLog] = None
        self._trace_file: Optional[IO[str]] = None
        self._previous: Optional[tuple] = None
        self._started_unix: Optional[float] = None
        self._started_perf_ns: Optional[int] = None

    def __enter__(self) -> "ObsContext":
        if not self.enabled:
            return self
        self._started_unix = time.time()
        self._started_perf_ns = time.perf_counter_ns()
        if self.trace_path is not None:
            self.trace_path.parent.mkdir(parents=True, exist_ok=True)
            try:
                self._trace_file = open(self.trace_path, "w", encoding="utf-8")
            except OSError as exc:
                raise ObservabilityError(
                    f"cannot open trace sink {self.trace_path}: {exc}"
                ) from exc
            self._trace_file.write(_json_line(self._manifest()))
            self._trace_file.flush()
            self.event_log = EventLog(self._trace_file)
        self._previous = (
            set_recorder(self.recorder),
            set_metrics(self.metrics),
            set_event_log(self.event_log),
            set_progress(self.progress),
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.enabled:
            return
        if self._previous is not None:
            prev_recorder, prev_metrics, prev_log, prev_progress = self._previous
            set_recorder(prev_recorder)
            set_metrics(prev_metrics)
            set_event_log(prev_log)
            set_progress(prev_progress)
            self._previous = None
        # The final heartbeat (state "finished") must land in the trace
        # before the tail summaries, while the event log is still open.
        if self.progress is not None:
            with event_scope(self.event_log):
                self.progress.close()
        if self._trace_file is not None:
            try:
                self._write_trace_tail()
            finally:
                self._trace_file.close()
                self._trace_file = None
        if self.metrics_path is not None and self.metrics is not None:
            self.metrics.export_json(self.metrics_path)
        if self.ledger_path is not None:
            append_run(self.ledger_path, self._ledger_row(exc_type))

    def _manifest(self) -> Dict[str, Any]:
        return {
            "kind": "manifest",
            "format": TRACE_FORMAT,
            "version": __version__,
            "created_unix": time.time(),
            "run_id": self.run_id,
            "meta": self.meta,
        }

    def _ledger_row(self, exc_type: Optional[type]) -> Dict[str, Any]:
        """The run's ``fullview-ledger-v1`` row, from metrics + clocks."""
        assert self.metrics is not None and self.run_id is not None
        snapshot = self.metrics.snapshot()
        counters: Mapping[str, Any] = snapshot.get("counters", {})
        gauges: Mapping[str, Any] = snapshot.get("gauges", {})
        executor = "unknown"
        selected = {
            name[len("executor_selected_"):]: count
            for name, count in counters.items()
            if name.startswith("executor_selected_")
        }
        if selected:
            executor = max(selected, key=lambda kind: (selected[kind], kind))
        workers = max(1, int(gauges.get("executor_workers", 1)))
        wall_seconds = 0.0
        if self._started_perf_ns is not None:
            wall_seconds = (time.perf_counter_ns() - self._started_perf_ns) / 1e9
        completed = int(counters.get("trials_completed", 0))
        seed = self.meta.get("seed")
        return {
            "format": LEDGER_FORMAT,
            "run_id": self.run_id,
            "experiment": str(self.meta.get("experiment", self.meta.get("command", "?"))),
            "config_digest": config_digest(self.meta),
            "seed": int(seed) if seed is not None else None,
            "git_sha": git_sha(),
            "executor": executor,
            "workers": workers,
            "wall_seconds": wall_seconds,
            "trials_per_sec": completed / wall_seconds if wall_seconds > 0 else 0.0,
            "trials_completed": completed,
            "trials_failed": int(counters.get("trials_failed", 0)),
            "outcome": "ok" if exc_type is None else "error",
            "retries": int(counters.get("chunk_retries", 0)),
            "respawns": int(counters.get("pool_respawns", 0)),
            "quarantined": int(counters.get("trials_quarantined", 0)),
            "checkpoints_recovered": int(counters.get("checkpoint_recoveries", 0)),
            "trace_path": str(self.trace_path) if self.trace_path else None,
            "metrics_path": str(self.metrics_path) if self.metrics_path else None,
            "started_unix": self._started_unix if self._started_unix else 0.0,
        }

    def _write_trace_tail(self) -> None:
        assert self.recorder is not None and self._trace_file is not None
        write = self._trace_file.write
        for summary in self.recorder.iter_summary_rows():
            write(
                _json_line(
                    {
                        "kind": "span_summary",
                        "name": summary.name,
                        "parent": summary.parent,
                        "count": summary.count,
                        "total_ns": summary.total_ns,
                        "min_ns": summary.min_ns,
                        "max_ns": summary.max_ns,
                    }
                )
            )
        for trial, dur_ns in self.recorder.trial_durations():
            write(_json_line({"kind": "trial", "trial": trial, "dur_ns": dur_ns}))
        for chunk in self.recorder.chunks:
            write(
                _json_line(
                    {
                        "kind": "chunk",
                        "first_trial": chunk.trials[0] if chunk.trials else -1,
                        "trials": len(chunk.trials),
                        "wall_ns": chunk.wall_ns,
                    }
                )
            )
        if self.metrics is not None:
            write(
                _json_line({"kind": "metrics", "snapshot": self.metrics.snapshot()})
            )
        self._trace_file.flush()


def _json_line(payload: Mapping[str, Any]) -> str:
    return json.dumps(payload) + "\n"


def observe(
    trace: Optional[Union[str, Path]] = None,
    metrics: Optional[Union[str, Path]] = None,
    meta: Optional[Mapping[str, Any]] = None,
    status: Optional[Union[str, Path]] = None,
    ledger: Optional[Union[str, Path]] = None,
    heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS,
) -> ObsContext:
    """An :class:`ObsContext` for the given sinks (inert when all None).

    The CLI's ``--trace``/``--metrics``/``--status``/``--ledger`` flags
    funnel straight here::

        with observe(trace=args.trace, metrics=args.metrics,
                     meta={"command": "run"}):
            ...  # everything inside is instrumented
    """
    return ObsContext(
        trace_path=trace,
        metrics_path=metrics,
        meta=meta,
        status_path=status,
        ledger_path=ledger,
        heartbeat_seconds=heartbeat_seconds,
    )


def obs_self_check(directory: Optional[Union[str, Path]] = None) -> Dict[str, Any]:
    """Measure recorder overhead and probe the JSONL sink for writability.

    Returns ``disabled_ns_per_span`` (cost of an instrumented call site
    with tracing off), ``enabled_ns_per_span`` (with a live recorder),
    and ``sink_writable`` / ``sink_dir`` for a probe file appended and
    removed in ``directory`` (default: the working directory).  Used by
    ``fullview diagnose``.
    """
    with recording(None):
        start = time.perf_counter_ns()
        for _ in range(_SELF_CHECK_SPANS):
            with span("self_check"):
                pass
        disabled_ns = (time.perf_counter_ns() - start) / _SELF_CHECK_SPANS
    with recording(TraceRecorder()):
        start = time.perf_counter_ns()
        for _ in range(_SELF_CHECK_SPANS):
            with span("self_check"):
                pass
        enabled_ns = (time.perf_counter_ns() - start) / _SELF_CHECK_SPANS
    sink_dir = Path(directory) if directory is not None else Path.cwd()
    probe = sink_dir / ".fullview-obs-probe.jsonl"
    try:
        with open(probe, "a", encoding="utf-8") as handle:
            handle.write(_json_line({"kind": "event", "event": "probe"}))
        probe.unlink()
        writable = True
    except OSError:
        writable = False
    return {
        "disabled_ns_per_span": disabled_ns,
        "enabled_ns_per_span": enabled_ns,
        "sink_dir": str(sink_dir),
        "sink_writable": writable,
    }
