"""``repro.obs`` — structured run telemetry for the Monte-Carlo engine.

Four zero-dependency pieces, all off by default and near-free when
disabled:

- :mod:`repro.obs.trace` — nested, thread-safe spans on
  ``time.perf_counter_ns`` whose records survive the process-pool
  boundary as per-chunk aggregates;
- :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms with a durable atomic JSON snapshot exporter;
- :mod:`repro.obs.events` — typed lifecycle events appended to a JSONL
  sink with sequence numbers and monotonic timestamps;
- :mod:`repro.obs.report` — a run-report builder (trials/sec, wall vs.
  CPU, worker utilization, fallback counts, slowest trials) over the
  trace file.

:class:`ObsContext` (usually via :func:`observe`) bundles the three
collectors, installs them as the process-wide actives, and on exit
writes the trace JSONL (manifest first, then events as they happened,
then span/trial/chunk summaries and a metrics snapshot) and the
metrics JSON.  Instrumentation never touches random state: traced and
untraced runs produce bit-identical trial outcomes.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO, Any, Dict, Mapping, Optional, Union

from repro._version import __version__
from repro.errors import ObservabilityError
from repro.obs.events import EventLog, set_event_log
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.obs.report import TRACE_FORMAT
from repro.obs.trace import TraceRecorder, recording, set_recorder, span

__all__ = [
    "ObsContext",
    "obs_self_check",
    "observe",
]

#: Span iterations used by the self-check's overhead estimate.
_SELF_CHECK_SPANS = 20_000


class ObsContext:
    """One run's telemetry: recorder + metrics + event log + sinks.

    Entering installs the collectors as the process-wide actives (the
    previous actives are restored on exit, so contexts nest).  On exit
    the trace JSONL gains the span summaries, per-trial wall times,
    chunk traces and a metrics snapshot, and the metrics JSON is
    exported durably.  A context created with neither sink is inert:
    entering it changes nothing, so call sites need no conditionals.
    """

    def __init__(
        self,
        trace_path: Optional[Union[str, Path]] = None,
        metrics_path: Optional[Union[str, Path]] = None,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.trace_path = Path(trace_path) if trace_path is not None else None
        self.metrics_path = Path(metrics_path) if metrics_path is not None else None
        self.meta: Dict[str, Any] = dict(meta or {})
        self.enabled = self.trace_path is not None or self.metrics_path is not None
        self.recorder: Optional[TraceRecorder] = (
            TraceRecorder() if self.enabled else None
        )
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if self.enabled else None
        )
        self.event_log: Optional[EventLog] = None
        self._trace_file: Optional[IO[str]] = None
        self._previous: Optional[tuple] = None

    def __enter__(self) -> "ObsContext":
        if not self.enabled:
            return self
        if self.trace_path is not None:
            self.trace_path.parent.mkdir(parents=True, exist_ok=True)
            try:
                self._trace_file = open(self.trace_path, "w", encoding="utf-8")
            except OSError as exc:
                raise ObservabilityError(
                    f"cannot open trace sink {self.trace_path}: {exc}"
                ) from exc
            self._trace_file.write(_json_line(self._manifest()))
            self._trace_file.flush()
            self.event_log = EventLog(self._trace_file)
        self._previous = (
            set_recorder(self.recorder),
            set_metrics(self.metrics),
            set_event_log(self.event_log),
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.enabled:
            return
        if self._previous is not None:
            prev_recorder, prev_metrics, prev_log = self._previous
            set_recorder(prev_recorder)
            set_metrics(prev_metrics)
            set_event_log(prev_log)
            self._previous = None
        if self._trace_file is not None:
            try:
                self._write_trace_tail()
            finally:
                self._trace_file.close()
                self._trace_file = None
        if self.metrics_path is not None and self.metrics is not None:
            self.metrics.export_json(self.metrics_path)

    def _manifest(self) -> Dict[str, Any]:
        return {
            "kind": "manifest",
            "format": TRACE_FORMAT,
            "version": __version__,
            "created_unix": time.time(),
            "meta": self.meta,
        }

    def _write_trace_tail(self) -> None:
        assert self.recorder is not None and self._trace_file is not None
        write = self._trace_file.write
        for summary in self.recorder.iter_summary_rows():
            write(
                _json_line(
                    {
                        "kind": "span_summary",
                        "name": summary.name,
                        "parent": summary.parent,
                        "count": summary.count,
                        "total_ns": summary.total_ns,
                        "min_ns": summary.min_ns,
                        "max_ns": summary.max_ns,
                    }
                )
            )
        for trial, dur_ns in self.recorder.trial_durations():
            write(_json_line({"kind": "trial", "trial": trial, "dur_ns": dur_ns}))
        for chunk in self.recorder.chunks:
            write(
                _json_line(
                    {
                        "kind": "chunk",
                        "first_trial": chunk.trials[0] if chunk.trials else -1,
                        "trials": len(chunk.trials),
                        "wall_ns": chunk.wall_ns,
                    }
                )
            )
        if self.metrics is not None:
            write(
                _json_line({"kind": "metrics", "snapshot": self.metrics.snapshot()})
            )
        self._trace_file.flush()


def _json_line(payload: Mapping[str, Any]) -> str:
    return json.dumps(payload) + "\n"


def observe(
    trace: Optional[Union[str, Path]] = None,
    metrics: Optional[Union[str, Path]] = None,
    meta: Optional[Mapping[str, Any]] = None,
) -> ObsContext:
    """An :class:`ObsContext` for the given sinks (inert when both None).

    The CLI's ``--trace``/``--metrics`` flags funnel straight here::

        with observe(trace=args.trace, metrics=args.metrics,
                     meta={"command": "run"}):
            ...  # everything inside is instrumented
    """
    return ObsContext(trace_path=trace, metrics_path=metrics, meta=meta)


def obs_self_check(directory: Optional[Union[str, Path]] = None) -> Dict[str, Any]:
    """Measure recorder overhead and probe the JSONL sink for writability.

    Returns ``disabled_ns_per_span`` (cost of an instrumented call site
    with tracing off), ``enabled_ns_per_span`` (with a live recorder),
    and ``sink_writable`` / ``sink_dir`` for a probe file appended and
    removed in ``directory`` (default: the working directory).  Used by
    ``fullview diagnose``.
    """
    with recording(None):
        start = time.perf_counter_ns()
        for _ in range(_SELF_CHECK_SPANS):
            with span("self_check"):
                pass
        disabled_ns = (time.perf_counter_ns() - start) / _SELF_CHECK_SPANS
    with recording(TraceRecorder()):
        start = time.perf_counter_ns()
        for _ in range(_SELF_CHECK_SPANS):
            with span("self_check"):
                pass
        enabled_ns = (time.perf_counter_ns() - start) / _SELF_CHECK_SPANS
    sink_dir = Path(directory) if directory is not None else Path.cwd()
    probe = sink_dir / ".fullview-obs-probe.jsonl"
    try:
        with open(probe, "a", encoding="utf-8") as handle:
            handle.write(_json_line({"kind": "event", "event": "probe"}))
        probe.unlink()
        writable = True
    except OSError:
        writable = False
    return {
        "disabled_ns_per_span": disabled_ns,
        "enabled_ns_per_span": enabled_ns,
        "sink_dir": str(sink_dir),
        "sink_writable": writable,
    }
