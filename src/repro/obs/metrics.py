"""Counters, gauges and fixed-bucket histograms for engine telemetry.

A :class:`MetricsRegistry` is a thread-safe, name-keyed store of three
instrument kinds:

- **counters** — monotone integer totals (``trials_completed``,
  ``chunk_fallbacks``, ``checkpoint_writes``, ``pool_warmups``);
- **gauges** — last-written floats (``workers``);
- **histograms** — fixed-bucket distributions (``trial_seconds``),
  with an overflow bucket plus count/total/min/max, so per-trial wall
  times summarize without storing every observation.

Like tracing, metrics are **off by default**: the process-wide active
registry is ``None`` and instrumented call sites guard on
:func:`active_metrics`, so the disabled cost is one global read.
:meth:`MetricsRegistry.export_json` snapshots the registry to disk via
a durable atomic write (fsync before rename) with a schema/format tag
and the package version, so trajectories of snapshots are comparable
across PRs.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro._version import __version__
from repro.errors import InvalidParameterError
from repro.ioutil import write_json_atomic

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "Histogram",
    "METRICS_FORMAT",
    "MetricsRegistry",
    "active_metrics",
    "metrics_scope",
    "set_metrics",
]

#: Schema tag written into every metrics snapshot.
METRICS_FORMAT = "fullview-metrics-v1"

#: Default histogram bucket upper bounds for durations in seconds
#: (10 us .. 60 s, roughly decade-spaced; observations above the last
#: bound land in the overflow bucket).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
    10.0,
    60.0,
)

#: The process-wide active registry (``None`` — the default — disables
#: metrics collection; call sites guard on :func:`active_metrics`).
_ACTIVE: Optional["MetricsRegistry"] = None


class Histogram:
    """A fixed-bucket histogram with overflow, count, sum, min and max.

    ``buckets`` are ascending upper bounds; an observation lands in the
    first bucket whose bound is >= the value, or in the overflow bucket
    past the last bound.  Not thread-safe on its own — the owning
    registry serializes access.
    """

    __slots__ = ("buckets", "counts", "count", "total", "min", "max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise InvalidParameterError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise InvalidParameterError(
                f"bucket bounds must be strictly ascending, got {bounds!r}"
            )
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready view of the histogram state."""
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Thread-safe named counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    def inc(self, name: str, amount: int = 1) -> int:
        """Increment counter ``name`` by ``amount``; returns the new total."""
        if amount < 0:
            raise InvalidParameterError(
                f"counters are monotone; cannot inc {name!r} by {amount!r}"
            )
        with self._lock:
            value = self._counters.get(name, 0) + amount
            self._counters[name] = value
        return value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        """Record ``value`` into histogram ``name`` (created on first use)."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = Histogram(buckets)
                self._histograms[name] = histogram
            histogram.observe(value)

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> Optional[float]:
        """Current value of gauge ``name`` (``None`` if never set)."""
        with self._lock:
            return self._gauges.get(name)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of every instrument, schema-tagged."""
        with self._lock:
            return {
                "format": METRICS_FORMAT,
                "version": __version__,
                "exported_unix": time.time(),
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: histogram.snapshot()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def export_json(self, path: Union[str, Path]) -> Path:
        """Durably write :meth:`snapshot` to ``path`` (atomic, fsynced)."""
        return write_json_atomic(path, self.snapshot())


def active_metrics() -> Optional[MetricsRegistry]:
    """The registry instrumentation currently feeds (``None`` = disabled)."""
    return _ACTIVE


def set_metrics(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Install ``registry`` as the active registry; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


class metrics_scope:
    """Context manager scoping an active registry (restores on exit)."""

    def __init__(self, registry: Optional[MetricsRegistry]) -> None:
        self._registry = registry
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> Optional[MetricsRegistry]:
        self._previous = set_metrics(self._registry)
        return self._registry

    def __exit__(self, exc_type, exc, tb) -> None:
        set_metrics(self._previous)
