"""Typed lifecycle events appended to a JSONL sink.

Each event is a small frozen dataclass naming one engine lifecycle
moment — a sweep starting, a chunk going out to the pool, a chunk
falling back in-process, a checkpoint hitting disk, a lifetime epoch
advancing, a sweep finishing.  The :class:`EventLog` serializes each as
one JSON line tagged ``{"kind": "event"}`` with a strictly increasing
sequence number and a monotonic ``t_ns`` timestamp
(:func:`time.perf_counter_ns`), so a trace file totally orders what
happened even when wall clocks step.

Events are emitted **only in the parent process**: worker processes
start with no active log, so instrumentation inside trial tasks is
naturally silent there (worker-side activity reaches the trace as
aggregated chunk summaries instead — see :mod:`repro.obs.trace`).
As with spans and metrics, the disabled cost is one global read.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass
from typing import IO, Optional, Union

from repro.errors import ObservabilityError

__all__ = [
    "CheckpointRecovered",
    "CheckpointWritten",
    "ChunkDispatched",
    "ChunkFellBack",
    "ChunkRetried",
    "EpochAdvanced",
    "EventLog",
    "PoolRespawned",
    "RunFinished",
    "RunProgress",
    "RunStarted",
    "SegmentsReleased",
    "TaskRegistered",
    "TrialQuarantined",
    "active_event_log",
    "event_scope",
    "set_event_log",
]

#: The process-wide active event log (``None`` — the default — disables
#: event emission; call sites guard on :func:`active_event_log`).
_ACTIVE: Optional["EventLog"] = None


@dataclass(frozen=True)
class RunStarted:
    """A trial sweep began: budget, seed and resolved worker count."""

    trials: int
    seed: int
    workers: int
    source: str = "engine"


@dataclass(frozen=True)
class ChunkDispatched:
    """A contiguous chunk of trials was submitted to the process pool."""

    chunk: int
    first_trial: int
    trials: int


@dataclass(frozen=True)
class ChunkFellBack:
    """A chunk was re-executed in-process after its future failed."""

    chunk: int
    first_trial: int
    trials: int
    reason: str


@dataclass(frozen=True)
class ChunkRetried:
    """A chunk's pool attempt failed and it was resubmitted.

    ``attempt`` is the 1-based retry index (1 = first resubmission) and
    ``reason`` names what killed the previous attempt (``"timeout"``,
    ``"broken-pool"`` or ``"worker-error"``).
    """

    chunk: int
    first_trial: int
    trials: int
    attempt: int
    reason: str


@dataclass(frozen=True)
class PoolRespawned:
    """The warm process pool was discarded and a fresh one spawned."""

    workers: int
    reason: str


@dataclass(frozen=True)
class TaskRegistered:
    """A run's task was registered on the payload plane.

    Emitted once per parallel run (process backend): the task's arrays
    and pickle body went into ``segments`` shared-memory segments
    totalling ``payload_bytes``, and every chunk submission of the run
    ships only the content ``digest``.
    """

    digest: str
    payload_bytes: int
    segments: int


@dataclass(frozen=True)
class SegmentsReleased:
    """A run's shared-memory payload segments were unlinked."""

    segments: int
    payload_bytes: int


@dataclass(frozen=True)
class TrialQuarantined:
    """Bisection isolated a repeatedly-failing trial; it was recorded
    as a failed :class:`~repro.simulation.engine.TrialOutcome` and the
    sweep continued without it."""

    trial: int
    error: str


@dataclass(frozen=True)
class CheckpointWritten:
    """A checkpoint reached disk (durably, post-fsync).

    ``checkpoint_kind`` distinguishes trial-level checkpoints
    (``"trial"``, from the resilient runner) from experiment-level run
    checkpoints (``"run"``, from ``fullview run --checkpoint``).  The
    name is deliberately not ``kind``: event fields are splatted into
    the JSONL line, whose ``kind`` key tags the line type itself.
    """

    path: str
    checkpoint_kind: str
    next_trial: int = 0


@dataclass(frozen=True)
class CheckpointRecovered:
    """A corrupt main checkpoint was healed from its last good backup."""

    path: str
    recovered_from: str
    next_trial: int


@dataclass(frozen=True)
class EpochAdvanced:
    """A lifetime simulation stepped one failure epoch."""

    epoch: int
    alive: int
    coverage: float


@dataclass(frozen=True)
class RunProgress:
    """A throttled heartbeat from the live progress tracker.

    Emitted parent-side by :class:`~repro.obs.progress.ProgressTracker`
    as trials complete: cumulative position (``done``/``total``/
    ``failed`` — monotone across the sweeps of one command), the
    trials/sec EWMA, the derived ETA (``None`` until a rate exists, so
    the JSON stays standard — never ``Infinity``), and the
    fault-handling tallies accumulated so far.
    """

    done: int
    total: int
    failed: int
    trials_per_sec: float
    eta_seconds: Optional[float]
    retries: int
    respawns: int
    quarantined: int
    fallbacks: int
    epochs: int


@dataclass(frozen=True)
class RunFinished:
    """A trial sweep completed (or stopped): tallies and clock readings."""

    completed: int
    failed: int
    wall_ns: int
    cpu_ns: int
    source: str = "engine"


class EventLog:
    """Append-only JSONL sink with sequence numbers and monotonic time.

    ``sink`` is any writable text file object; the log writes one line
    per event and flushes immediately, so a crashed run leaves every
    emitted event on disk.  Thread-safe: sequence assignment and the
    write happen under one lock.
    """

    def __init__(self, sink: IO[str]) -> None:
        self._sink = sink
        self._lock = threading.Lock()
        self._seq = 0

    def emit(
        self,
        event: Union[
            RunStarted,
            ChunkDispatched,
            ChunkFellBack,
            ChunkRetried,
            PoolRespawned,
            TaskRegistered,
            SegmentsReleased,
            TrialQuarantined,
            CheckpointWritten,
            CheckpointRecovered,
            EpochAdvanced,
            RunProgress,
            RunFinished,
        ],
    ) -> int:
        """Append one event; returns its sequence number."""
        payload = {
            "kind": "event",
            "event": type(event).__name__,
            **asdict(event),
        }
        with self._lock:
            payload["seq"] = self._seq
            payload["t_ns"] = time.perf_counter_ns()
            self._seq += 1
            try:
                self._sink.write(json.dumps(payload) + "\n")
                self._sink.flush()
            except (OSError, ValueError) as exc:
                raise ObservabilityError(
                    f"cannot append event to JSONL sink: {exc}"
                ) from exc
        return payload["seq"]

    @property
    def emitted(self) -> int:
        """How many events have been written so far."""
        with self._lock:
            return self._seq


def active_event_log() -> Optional[EventLog]:
    """The log events currently append to (``None`` = disabled)."""
    return _ACTIVE


def set_event_log(log: Optional[EventLog]) -> Optional[EventLog]:
    """Install ``log`` as the active event log; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = log
    return previous


class event_scope:
    """Context manager scoping an active event log (restores on exit)."""

    def __init__(self, log: Optional[EventLog]) -> None:
        self._log = log
        self._previous: Optional[EventLog] = None

    def __enter__(self) -> Optional[EventLog]:
        self._previous = set_event_log(self._log)
        return self._log

    def __exit__(self, exc_type, exc, tb) -> None:
        set_event_log(self._previous)
