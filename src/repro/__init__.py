"""Full-view coverage of randomly-deployed heterogeneous camera sensor networks.

A from-scratch reproduction of Wu & Wang, *Achieving Full View Coverage
with Randomly-Deployed Heterogeneous Camera Sensors* (ICDCS 2012):
binary-sector camera sensing on the unit torus, heterogeneous sensor
groups, the exact full-view coverage criterion, the paper's necessary
and sufficient geometric conditions, critical sensing area (CSA)
theory under uniform deployment, Poisson-deployment probabilities, and
a Monte-Carlo harness that validates every formula by simulation.

Quickstart
----------
>>> import math
>>> import numpy as np
>>> from repro import (
...     CameraSpec, HeterogeneousProfile, UniformDeployment,
...     point_is_full_view_covered, csa_sufficient,
... )
>>> profile = HeterogeneousProfile.homogeneous(
...     CameraSpec(radius=0.2, angle_of_view=math.pi / 3))
>>> fleet = UniformDeployment().deploy(
...     profile, n=500, rng=np.random.default_rng(7))
>>> point_is_full_view_covered(fleet, (0.5, 0.5), theta=math.pi / 3)  # doctest: +SKIP
True

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
paper's figures and tables.
"""

from repro._version import __version__
from repro.barrier import barrier_exists, find_widest_covered_strip
from repro.core import (
    csa_necessary,
    csa_sufficient,
    diagnose_point,
    full_view_coverage_fraction,
    is_full_view_covered,
    necessary_failure_probability,
    point_is_full_view_covered,
    point_meets_necessary_condition,
    point_meets_sufficient_condition,
    poisson_necessary_probability,
    poisson_sufficient_probability,
    sufficient_failure_probability,
)
from repro.core.batch import coverage_fraction_fast, full_view_mask
from repro.core.design import (
    design_report,
    solve_area_for_point_probability,
    solve_n_for_point_probability,
)
from repro.core.redundancy import (
    breach_cost,
    minimum_guard_set,
    redundant_sensors,
)
from repro.deployment import (
    PoissonDeployment,
    SquareLatticeDeployment,
    TriangularLatticeDeployment,
    UniformDeployment,
)
from repro.deployment.cluster import MaternClusterDeployment
from repro.sensors.io import load_fleet, save_fleet
from repro.errors import (
    ChaosError,
    CheckpointError,
    DeploymentError,
    FullViewError,
    InvalidParameterError,
    InvalidProfileError,
)
from repro.core.kernels import KernelPolicy
from repro.geometry import DenseGrid, Region
from repro.resilience import (
    BernoulliFailure,
    DiskBlackout,
    FailureModel,
    FailureSchedule,
    LifetimeDistribution,
    LifetimeTrace,
    OrientationDrift,
    RadiusDegradation,
    lifetime_distribution,
    simulate_lifetime,
)
from repro.sensors import CameraSpec, GroupSpec, HeterogeneousProfile, SensorFleet
from repro.simulation import (
    BernoulliEstimate,
    ChaosPolicy,
    MonteCarloConfig,
    ResilientResult,
    ResultTable,
    RetryPolicy,
    estimate_area_fraction,
    estimate_grid_failure_probability,
    estimate_point_probability,
    fault_scope,
    run_resilient_trials,
)

__all__ = [
    "BernoulliEstimate",
    "BernoulliFailure",
    "CameraSpec",
    "ChaosError",
    "ChaosPolicy",
    "CheckpointError",
    "DenseGrid",
    "DeploymentError",
    "DiskBlackout",
    "FailureModel",
    "FailureSchedule",
    "FullViewError",
    "GroupSpec",
    "HeterogeneousProfile",
    "InvalidParameterError",
    "InvalidProfileError",
    "KernelPolicy",
    "LifetimeDistribution",
    "LifetimeTrace",
    "MaternClusterDeployment",
    "MonteCarloConfig",
    "OrientationDrift",
    "PoissonDeployment",
    "RadiusDegradation",
    "Region",
    "ResilientResult",
    "ResultTable",
    "RetryPolicy",
    "SensorFleet",
    "SquareLatticeDeployment",
    "TriangularLatticeDeployment",
    "UniformDeployment",
    "__version__",
    "barrier_exists",
    "breach_cost",
    "coverage_fraction_fast",
    "csa_necessary",
    "csa_sufficient",
    "design_report",
    "diagnose_point",
    "estimate_area_fraction",
    "estimate_grid_failure_probability",
    "estimate_point_probability",
    "fault_scope",
    "find_widest_covered_strip",
    "full_view_coverage_fraction",
    "full_view_mask",
    "is_full_view_covered",
    "lifetime_distribution",
    "load_fleet",
    "minimum_guard_set",
    "necessary_failure_probability",
    "point_is_full_view_covered",
    "point_meets_necessary_condition",
    "point_meets_sufficient_condition",
    "poisson_necessary_probability",
    "poisson_sufficient_probability",
    "redundant_sensors",
    "run_resilient_trials",
    "save_fleet",
    "simulate_lifetime",
    "solve_area_for_point_probability",
    "solve_n_for_point_probability",
    "sufficient_failure_probability",
]
