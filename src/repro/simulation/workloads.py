"""Motivating deployment scenarios as ready-made workloads.

The paper's introduction motivates camera networks with traffic
monitoring, estate surveillance, animal protection and hostile-area
air-drops.  Each scenario here bundles a heterogeneous profile, a
sensor count, an effective angle and the deployment scheme that fits
the story, so examples and benchmarks can exercise the public API on
named, realistic configurations rather than bare parameter tuples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.deployment.base import DeploymentScheme
from repro.deployment.poisson import PoissonDeployment
from repro.deployment.uniform import UniformDeployment
from repro.errors import InvalidParameterError
from repro.sensors.catalog import aging_fleet, budget_mix, mixed_profile
from repro.sensors.model import HeterogeneousProfile

__all__ = [
    "Workload",
    "border_barrier",
    "estate_surveillance",
    "registry",
    "traffic_monitoring",
    "wildlife_protection",
]


@dataclass(frozen=True)
class Workload:
    """A named, fully-specified coverage scenario.

    Attributes
    ----------
    name, description:
        Human-readable identity.
    profile:
        Heterogeneous camera mix.
    n:
        Number of sensors to deploy.
    theta:
        Effective angle (recognition-quality requirement): smaller
        means stricter frontal-view demands.
    scheme:
        Deployment scheme fitting the scenario's story.
    """

    name: str
    description: str
    profile: HeterogeneousProfile
    n: int
    theta: float
    scheme: DeploymentScheme = field(default_factory=UniformDeployment)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise InvalidParameterError(f"n must be >= 1, got {self.n!r}")
        if not (0.0 < self.theta <= math.pi):
            raise InvalidParameterError(f"theta must be in (0, pi], got {self.theta!r}")

    def csa_margin(self) -> float:
        """``s_c / s_S,c(n)``: how provisioned the fleet is.

        Below 1 the sufficient CSA is not met; at or above 1 asymptotic
        full-view coverage is guaranteed by Theorem 2.
        """
        from repro.core.csa import csa_sufficient

        return self.profile.weighted_sensing_area / csa_sufficient(self.n, self.theta)

    def provisioned(self, q: float = 1.2, condition: str = "sufficient") -> "Workload":
        """The same scenario with cameras rescaled to ``q x CSA``.

        Keeps every group's angle of view and fraction; radii scale by a
        common factor.  This answers the design question the paper's
        Section VI poses: how good must the cameras be for this network
        to full-view cover its region?
        """
        from repro.core.csa import csa_necessary, csa_sufficient

        if q <= 0:
            raise InvalidParameterError(f"q must be positive, got {q!r}")
        base = (
            csa_sufficient(self.n, self.theta)
            if condition == "sufficient"
            else csa_necessary(self.n, self.theta)
        )
        if condition not in ("sufficient", "necessary"):
            raise InvalidParameterError(
                f"condition must be 'necessary' or 'sufficient', got {condition!r}"
            )
        return Workload(
            name=f"{self.name}_provisioned",
            description=f"{self.description} (rescaled to {q} x {condition} CSA)",
            profile=self.profile.scaled_to_weighted_area(q * base),
            n=self.n,
            theta=self.theta,
            scheme=self.scheme,
        )


def traffic_monitoring(n: int = 800) -> Workload:
    """City-intersection monitoring: plate capture needs tight theta.

    A mix of telephoto plate cameras and standard overview cameras;
    planned installation approximated by uniform deployment at high
    density, with a strict effective angle (pi/6) because plates are
    legible only near the frontal viewpoint.
    """
    return Workload(
        name="traffic_monitoring",
        description="Licence-plate capture at urban intersections",
        profile=mixed_profile([("telephoto", 0.4), ("standard", 0.6)]),
        n=n,
        theta=math.pi / 6.0,
    )


def estate_surveillance(n: int = 500) -> Workload:
    """Residential-estate surveillance with a budget-constrained mix.

    High-end and low-end cameras share the network (the paper's funds
    scenario); face capture tolerates a moderate effective angle
    (pi/4).
    """
    return Workload(
        name="estate_surveillance",
        description="Face capture across a residential estate",
        profile=budget_mix(high_end_fraction=0.3),
        n=n,
        theta=math.pi / 4.0,
    )


def wildlife_protection(n: int = 600) -> Workload:
    """Air-dropped sensors over a reserve: Poisson is the right model.

    Sensors dropped by plane over inaccessible terrain land as a
    Poisson process; identifying individual animals (stripe/spot
    patterns) needs near-frontal captures, and part of the fleet has
    degraded in the field.
    """
    return Workload(
        name="wildlife_protection",
        description="Identifying individual animals in a nature reserve",
        profile=aging_fleet(new_fraction=0.7),
        n=n,
        theta=math.pi / 5.0,
        scheme=PoissonDeployment(),
    )


def border_barrier(n: int = 1200) -> Workload:
    """Hostile-area deployment by artillery: dense Poisson, strict theta.

    The paper's "hostile or hard to access" story: no manual placement
    possible, recognition of vehicles requires tight frontal capture.
    """
    return Workload(
        name="border_barrier",
        description="Vehicle recognition along an inaccessible border region",
        profile=mixed_profile([("standard", 0.5), ("wide_angle", 0.5)]),
        n=n,
        theta=math.pi / 8.0,
        scheme=PoissonDeployment(),
    )


def registry() -> Dict[str, Workload]:
    """All built-in workloads keyed by name."""
    workloads = [
        traffic_monitoring(),
        estate_surveillance(),
        wildlife_protection(),
        border_barrier(),
    ]
    return {w.name: w for w in workloads}
