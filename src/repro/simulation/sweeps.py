"""Parameter sweeps over the quantities the paper varies.

Three axes recur across the evaluation: the effective angle ``theta``
(Figure 7), the sensor count ``n`` (Figure 8), and the CSA multiple
``q`` (the Propositions' phase-transition parameter).  The sweep
helpers here turn an axis plus an evaluator into a
:class:`~repro.simulation.results.ResultTable` with uniform column
conventions, so the experiment modules stay declarative.
"""

from __future__ import annotations

import math
from typing import Callable, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.simulation.results import ResultTable

__all__ = ["Evaluator", "n_axis_log", "q_axis", "sweep", "theta_axis"]

Evaluator = Callable[[float], Mapping[str, object]]


def sweep(
    title: str,
    axis_name: str,
    axis_values: Sequence[float],
    evaluator: Evaluator,
    columns: Optional[Sequence[str]] = None,
) -> ResultTable:
    """Run ``evaluator`` over an axis and collect rows.

    ``evaluator`` maps one axis value to a mapping of column -> cell;
    the axis value itself becomes the first column.  Column order is
    taken from ``columns`` when given, else from the first result's
    insertion order.
    """
    values = list(axis_values)
    if not values:
        raise InvalidParameterError("sweep needs at least one axis value")
    first = evaluator(values[0])
    cols = [axis_name] + (list(columns) if columns is not None else list(first.keys()))
    table = ResultTable(title=title, columns=cols)
    table.add_row(values[0], *[first.get(c) for c in cols[1:]])
    for value in values[1:]:
        result = evaluator(value)
        table.add_row(value, *[result.get(c) for c in cols[1:]])
    return table


def theta_axis(
    start_fraction_of_pi: float = 0.1,
    stop_fraction_of_pi: float = 0.5,
    count: int = 9,
) -> np.ndarray:
    """Effective angles ``theta`` as fractions of pi (Figure 7's axis)."""
    if count < 1:
        raise InvalidParameterError(f"count must be >= 1, got {count!r}")
    if not (0.0 < start_fraction_of_pi <= stop_fraction_of_pi <= 1.0):
        raise InvalidParameterError("need 0 < start <= stop <= 1 (fractions of pi)")
    return np.linspace(start_fraction_of_pi, stop_fraction_of_pi, count) * math.pi


def n_axis_log(start: int = 100, stop: int = 10_000, count: int = 13) -> List[int]:
    """Log-spaced sensor counts (Figure 8's axis), deduplicated."""
    if start < 2 or stop < start or count < 1:
        raise InvalidParameterError("need 2 <= start <= stop and count >= 1")
    raw = np.logspace(math.log10(start), math.log10(stop), count)
    values: List[int] = []
    for v in raw:
        iv = int(round(v))
        if not values or iv > values[-1]:
            values.append(iv)
    return values


def q_axis(
    below: Sequence[float] = (0.25, 0.5, 0.75),
    above: Sequence[float] = (1.5, 2.0, 3.0),
    include_unit: bool = True,
) -> List[float]:
    """CSA multiples ``q`` straddling the threshold ``q = 1``."""
    values = sorted(set(below) | (set((1.0,)) if include_unit else set()) | set(above))
    if any(v <= 0 for v in values):
        raise InvalidParameterError("all q values must be positive")
    return values
