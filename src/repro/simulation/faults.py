"""Deterministic fault injection and retry policy for trial execution.

Long Monte-Carlo sweeps die in ways the trial functions never see:
a worker process is OOM-killed mid-chunk, a worker wedges on a lock and
never returns, the pool's pickle channel chokes on a payload, a
checkpoint file is truncated by a crash or a full disk.  Losing trials
to any of these silently biases the very estimates the paper's
Theorems 1-3 are validated against, so the engine must *recover* from
them — and recovery code that is never executed is recovery code that
does not work.  This module makes every one of those failure modes a
first-class, seed-reproducible event:

- :class:`ChaosPolicy` — a frozen, picklable profile of fault
  probabilities (worker crash, worker hang, slow chunk, pickle
  failure, checkpoint corruption, and an always-fatal *poison trial*).
  Every decision is a pure function of ``(chaos seed, fault kind,
  injection site, attempt)`` via spawn-key derived generators, so a
  failing run replays bit-for-bit from its seed — in the parent, in
  the workers, and across retries.  Activated explicitly, through
  :func:`fault_scope`, or process-wide via the :data:`CHAOS_ENV_VAR`
  environment variable (``FULLVIEW_CHAOS="seed=7,crash=0.2,hang=0.1"``).
- :class:`RetryPolicy` — the hardened executor's knobs: bounded
  per-chunk retries, an optional per-attempt deadline, exponential
  backoff with deterministic half-jitter, and the pool-respawn budget
  that bounds the graceful-degradation ladder (warm pool -> respawned
  pool -> in-process serial).  Environment defaults come from
  :data:`MAX_RETRIES_ENV_VAR` / :data:`CHUNK_TIMEOUT_ENV_VAR`.

Injection happens at exactly two seams: the top of
:func:`repro.simulation.engine._run_chunk` (before any trial runs, so
an injected fault can never perturb a trial's generator — a retried
chunk re-derives every stream and tallies bit-identical results) and
the checkpoint-write path of :mod:`repro.simulation.runner` (after the
durable write, modelling corruption at rest).  The in-process fallback
rung never injects: chaos models faults of the *worker boundary*, and
the parent is not a worker.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, fields
from typing import Optional, Sequence, Tuple

from repro.errors import ChaosError, InvalidParameterError
from repro.seeding import derive_rng

__all__ = [
    "CHAOS_ENV_VAR",
    "CHUNK_TIMEOUT_ENV_VAR",
    "ChaosPolicy",
    "MAX_RETRIES_ENV_VAR",
    "RetryPolicy",
    "active_chaos_policy",
    "active_retry_policy",
    "fault_scope",
    "is_serialization_error",
    "resolve_chaos_policy",
    "resolve_retry_policy",
]

#: Environment variable holding a chaos spec (``"seed=7,crash=0.2"``);
#: unset or empty means no injection anywhere.
CHAOS_ENV_VAR = "FULLVIEW_CHAOS"

#: Environment default for :attr:`RetryPolicy.max_retries`.
MAX_RETRIES_ENV_VAR = "FULLVIEW_MAX_RETRIES"

#: Environment default for :attr:`RetryPolicy.chunk_timeout` (seconds).
CHUNK_TIMEOUT_ENV_VAR = "FULLVIEW_CHUNK_TIMEOUT"

def is_serialization_error(exc: Exception) -> bool:
    """Whether a worker-boundary failure is a pickling problem.

    Failure classification belongs with the fault policies: this is
    the one error class no retry can fix (the same task fails the same
    way on every attempt), so every executor backend routes it straight
    to its in-process fallback.  ``pickle`` is inconsistent about the
    type it raises: lambdas give ``PicklingError``, local functions
    ``AttributeError`` and unpicklable values (locks, generators)
    ``TypeError`` — the stable signal across all three is the word
    "pickle" in the message.
    """
    if isinstance(exc, pickle.PicklingError):
        return True
    return isinstance(exc, (AttributeError, TypeError)) and "pickle" in str(
        exc
    ).lower()


#: Spawn-key codes for the fault kinds, so each kind draws from its own
#: independent stream under the chaos seed.
_CRASH_KEY = 1
_HANG_KEY = 2
_SLOW_KEY = 3
_PICKLE_KEY = 4
_CORRUPT_KEY = 5
_BACKOFF_KEY = 6


@dataclass(frozen=True)
class ChaosPolicy:
    """A seeded profile of injected faults (frozen, picklable).

    Rates are per-injection-site probabilities in ``[0, 1]``; every
    draw is keyed by ``(seed, kind, site, attempt)``, so the same
    policy produces the same faults in any execution order and across
    process boundaries.

    Attributes
    ----------
    seed:
        Master seed for every injection decision.
    crash:
        Probability a chunk attempt dies at the worker boundary
        (raises :class:`~repro.errors.ChaosError` before any trial
        runs — the observable shape of a killed worker).
    hang:
        Probability a chunk attempt sleeps ``hang_seconds`` before
        starting (trips the executor's per-chunk deadline when one is
        set; otherwise merely slow).
    slow:
        Probability a chunk attempt sleeps ``slow_seconds`` (latency
        noise that must never affect results).
    pickle_error:
        Probability a chunk attempt fails like a broken pickle channel
        (a :class:`~repro.errors.ChaosError` tagged as such).
    corrupt:
        Probability a just-written trial checkpoint is truncated on
        disk (corruption at rest; exercises checkpoint self-healing).
    poison_trial:
        A trial index whose chunk *always* dies at the worker boundary,
        on every attempt — the reproducible stand-in for a trial that
        segfaults its worker.  Drives the quarantine bisection.
    hang_seconds / slow_seconds:
        Injected sleep durations.
    attempts:
        Only attempt indices below this fire the probabilistic faults
        (the fault "clears" on later retries).  The default of 1 makes
        every non-poison fault recoverable with a single retry, which
        is what keeps chaos runs completing bit-identically.
    """

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    slow: float = 0.0
    pickle_error: float = 0.0
    corrupt: float = 0.0
    poison_trial: Optional[int] = None
    hang_seconds: float = 0.5
    slow_seconds: float = 0.02
    attempts: int = 1

    def __post_init__(self) -> None:
        for name in ("crash", "hang", "slow", "pickle_error", "corrupt"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise InvalidParameterError(
                    f"chaos rate {name} must be in [0, 1], got {rate!r}"
                )
        if self.hang_seconds < 0.0 or self.slow_seconds < 0.0:
            raise InvalidParameterError(
                "chaos sleep durations must be >= 0, got "
                f"hang_seconds={self.hang_seconds!r}, "
                f"slow_seconds={self.slow_seconds!r}"
            )
        if self.attempts < 1:
            raise InvalidParameterError(
                f"chaos attempts must be >= 1, got {self.attempts!r}"
            )

    #: Spec keys accepted by :meth:`parse`, mapped to field names.
    _SPEC_KEYS = {
        "seed": "seed",
        "crash": "crash",
        "hang": "hang",
        "slow": "slow",
        "pickle": "pickle_error",
        "corrupt": "corrupt",
        "poison": "poison_trial",
        "hang_seconds": "hang_seconds",
        "slow_seconds": "slow_seconds",
        "attempts": "attempts",
    }

    @classmethod
    def parse(cls, spec: str) -> "ChaosPolicy":
        """Parse a ``"key=value,key=value"`` chaos spec.

        Keys: ``seed``, ``crash``, ``hang``, ``slow``, ``pickle``,
        ``corrupt``, ``poison``, ``hang_seconds``, ``slow_seconds``,
        ``attempts``.  Unknown keys and malformed values raise
        :class:`~repro.errors.InvalidParameterError`.
        """
        values = {}
        integral = {"seed", "poison_trial", "attempts"}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep or key not in cls._SPEC_KEYS:
                known = ", ".join(sorted(cls._SPEC_KEYS))
                raise InvalidParameterError(
                    f"bad chaos spec entry {part!r}; expected key=value with "
                    f"key one of: {known}"
                )
            field = cls._SPEC_KEYS[key]
            try:
                values[field] = (
                    int(raw) if field in integral else float(raw)
                )
            except ValueError as exc:
                raise InvalidParameterError(
                    f"bad chaos spec value for {key!r}: {raw!r}"
                ) from exc
        return cls(**values)

    @classmethod
    def from_env(cls) -> Optional["ChaosPolicy"]:
        """The policy named by :data:`CHAOS_ENV_VAR`, or ``None``."""
        spec = os.environ.get(CHAOS_ENV_VAR, "").strip()
        if not spec:
            return None
        return cls.parse(spec)

    def _fires(self, rate: float, kind: int, *key: int) -> bool:
        """One deterministic injection decision."""
        if rate <= 0.0:
            return False
        return bool(derive_rng(self.seed, kind, *key).random() < rate)

    def perturb_chunk(self, trials: Sequence[int], attempt: int) -> None:
        """The ``_run_chunk`` injection seam: raise or sleep, or do nothing.

        Runs before any trial of the chunk, so injected faults can
        never touch a trial generator.  Poison fires on every attempt;
        the probabilistic faults only on attempts below
        :attr:`attempts` (keyed by the chunk's first trial and the
        attempt index, so retries redraw independently).
        """
        first = int(trials[0]) if len(trials) else 0
        if self.poison_trial is not None and self.poison_trial in trials:
            raise ChaosError(
                f"chaos: poison trial {self.poison_trial} crashed its worker "
                f"(chunk at trial {first}, attempt {attempt})"
            )
        if attempt < self.attempts:
            if self._fires(self.crash, _CRASH_KEY, first, attempt):
                raise ChaosError(
                    f"chaos: injected worker crash "
                    f"(chunk at trial {first}, attempt {attempt})"
                )
            if self._fires(self.pickle_error, _PICKLE_KEY, first, attempt):
                raise ChaosError(
                    f"chaos: injected pickle failure "
                    f"(chunk at trial {first}, attempt {attempt})"
                )
            if self._fires(self.hang, _HANG_KEY, first, attempt):
                time.sleep(self.hang_seconds)
        if self._fires(self.slow, _SLOW_KEY, first, attempt):
            time.sleep(self.slow_seconds)

    def corrupts_checkpoint(self, write_index: int) -> bool:
        """Whether checkpoint write ``write_index`` is truncated at rest."""
        return self._fires(self.corrupt, _CORRUPT_KEY, write_index)

    def render_spec(self) -> str:
        """The ``key=value`` spec that reproduces this policy."""
        reverse = {field: key for key, field in self._SPEC_KEYS.items()}
        default = ChaosPolicy()
        parts = []
        for field in fields(self):
            value = getattr(self, field.name)
            if value != getattr(default, field.name):
                parts.append(f"{reverse[field.name]}={value}")
        return ",".join(parts) if parts else "seed=0"


@dataclass(frozen=True)
class RetryPolicy:
    """Deadlines, retries, backoff and the degradation budget.

    Attributes
    ----------
    max_retries:
        Re-submissions allowed per chunk after its first attempt.
    chunk_timeout:
        Per-attempt deadline in seconds (``None`` waits forever — the
        fault-free fast path).  A timed-out chunk's pool is respawned,
        because a hung worker poisons one slot until it returns.
    backoff_base:
        First retry delay in seconds; doubled per retry, capped at
        ``backoff_max``, scaled by deterministic half-jitter in
        ``[0.5, 1.0)`` keyed by the sweep seed, chunk and attempt.
    max_pool_respawns:
        Fresh pools a single sweep may start after breakage/timeouts
        before degrading to in-process serial execution for the rest
        of the sweep.
    """

    max_retries: int = 2
    chunk_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    max_pool_respawns: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise InvalidParameterError(
                f"max_retries must be >= 0, got {self.max_retries!r}"
            )
        if self.chunk_timeout is not None and not self.chunk_timeout > 0.0:
            raise InvalidParameterError(
                f"chunk_timeout must be positive seconds or None, "
                f"got {self.chunk_timeout!r}"
            )
        if self.backoff_base < 0.0 or self.backoff_max < 0.0:
            raise InvalidParameterError(
                "backoff durations must be >= 0, got "
                f"base={self.backoff_base!r}, max={self.backoff_max!r}"
            )
        if self.max_pool_respawns < 0:
            raise InvalidParameterError(
                f"max_pool_respawns must be >= 0, got {self.max_pool_respawns!r}"
            )

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Defaults overridden by the retry environment variables."""
        kwargs = {}
        raw = os.environ.get(MAX_RETRIES_ENV_VAR, "").strip()
        if raw:
            try:
                kwargs["max_retries"] = int(raw)
            except ValueError as exc:
                raise InvalidParameterError(
                    f"{MAX_RETRIES_ENV_VAR} must be an integer >= 0, got {raw!r}"
                ) from exc
        raw = os.environ.get(CHUNK_TIMEOUT_ENV_VAR, "").strip()
        if raw:
            try:
                kwargs["chunk_timeout"] = float(raw)
            except ValueError as exc:
                raise InvalidParameterError(
                    f"{CHUNK_TIMEOUT_ENV_VAR} must be positive seconds, got {raw!r}"
                ) from exc
        return cls(**kwargs)

    def backoff_seconds(self, seed: int, chunk_first_trial: int, attempt: int) -> float:
        """The delay before retry ``attempt`` (>= 1) of one chunk.

        Exponential in the retry index with deterministic half-jitter:
        ``min(backoff_max, backoff_base * 2**(attempt-1)) * u`` with
        ``u`` drawn from ``[0.5, 1.0)`` under the sweep seed, so
        colliding retries de-synchronise without losing replayability.
        """
        if self.backoff_base <= 0.0:
            return 0.0
        delay = min(self.backoff_max, self.backoff_base * (2.0 ** (attempt - 1)))
        u = derive_rng(seed, _BACKOFF_KEY, chunk_first_trial, attempt).random()
        return delay * (0.5 + 0.5 * u)


#: Process-wide scoped policies (installed by :class:`fault_scope`);
#: ``None`` slots fall through to the environment variables.
_ACTIVE_RETRY: Optional[RetryPolicy] = None
_ACTIVE_CHAOS: Optional[ChaosPolicy] = None


def active_retry_policy() -> Optional[RetryPolicy]:
    """The scoped retry policy, if a :class:`fault_scope` installed one."""
    return _ACTIVE_RETRY


def active_chaos_policy() -> Optional[ChaosPolicy]:
    """The scoped chaos policy, if a :class:`fault_scope` installed one."""
    return _ACTIVE_CHAOS


def resolve_retry_policy(explicit: Optional[RetryPolicy] = None) -> RetryPolicy:
    """Explicit policy, else the scoped one, else environment defaults."""
    if explicit is not None:
        return explicit
    if _ACTIVE_RETRY is not None:
        return _ACTIVE_RETRY
    return RetryPolicy.from_env()


def resolve_chaos_policy(explicit: Optional[ChaosPolicy] = None) -> Optional[ChaosPolicy]:
    """Explicit policy, else the scoped one, else :data:`CHAOS_ENV_VAR`."""
    if explicit is not None:
        return explicit
    if _ACTIVE_CHAOS is not None:
        return _ACTIVE_CHAOS
    return ChaosPolicy.from_env()


class fault_scope:
    """Context manager scoping retry/chaos policies (restores on exit).

    A ``None`` slot does not disable anything — it simply leaves
    resolution to the environment variables, so a scope built from CLI
    flags only overrides what the user actually passed.
    """

    def __init__(
        self,
        retry: Optional[RetryPolicy] = None,
        chaos: Optional[ChaosPolicy] = None,
    ) -> None:
        self._retry = retry
        self._chaos = chaos
        self._previous: Tuple[Optional[RetryPolicy], Optional[ChaosPolicy]] = (
            None,
            None,
        )

    def __enter__(self) -> "fault_scope":
        global _ACTIVE_RETRY, _ACTIVE_CHAOS
        self._previous = (_ACTIVE_RETRY, _ACTIVE_CHAOS)
        if self._retry is not None:
            _ACTIVE_RETRY = self._retry
        if self._chaos is not None:
            _ACTIVE_CHAOS = self._chaos
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE_RETRY, _ACTIVE_CHAOS
        _ACTIVE_RETRY, _ACTIVE_CHAOS = self._previous
