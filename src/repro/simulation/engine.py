"""The trial-execution engine: one seeded core behind every Monte-Carlo loop.

Every quantitative claim in the paper is validated by the same loop:
derive the generator for trial ``i``, deploy a random fleet, evaluate a
condition, emit a small result record.  This module owns that loop once,
as three separable pieces:

- :class:`MonteCarloConfig` — the trial budget and master seed.  Trial
  ``i``'s generator is ``SeedSequence(seed, spawn_key=(i,))``, which is
  O(1)-addressable and order-independent, so **any execution order of
  the trials produces bit-identical streams**.  That single property is
  what makes everything downstream compose: parallel execution,
  checkpoint/resume and plain serial loops all tally the same numbers.
- A *trial task* — any callable ``(trial_index, rng) -> value`` whose
  randomness comes only from ``rng``.  The estimator tasks in
  :mod:`repro.simulation.montecarlo` and the lifetime task in
  :mod:`repro.resilience.lifetime` are frozen dataclasses, so they
  pickle cleanly into worker processes.
- A pluggable *executor*.  :class:`SerialExecutor` runs trials inline,
  one per batch (preserving per-trial budget checks and checkpoint
  cadence exactly).  :class:`ParallelExecutor` dispatches contiguous
  chunks of trials to a warm, process-lifetime ``ProcessPoolExecutor``
  (one per worker count, started via a fork-safe method) and yields
  each chunk's outcomes in trial order; a chunk whose worker dies is
  transparently re-executed in-process (fault isolation per chunk), so
  a broken pool degrades to the serial path instead of losing the
  sweep.  :class:`ThreadExecutor` runs the same chunked ladder on a
  thread pool: no pickling, no process boundary — the win comes from
  numpy releasing the GIL inside the batch kernels.

The process backend rides the payload plane
(:mod:`repro.simulation.payload`): a run registers its task once — big
ndarrays land in shared-memory segments, the task body in one more —
and every chunk submission carries only a content-digest
:class:`~repro.simulation.payload.TaskRef` plus trial indices, so
payload bytes cross the boundary once per run instead of once per
chunk.  Workers resolve handles lazily and cache per process; named
segments survive pool respawns, so the faults ladder re-attaches for
free.  Tasks that cannot pickle skip registration and fall back to
inline shipping (and ultimately in-process execution) exactly as
before.

Backend selection is layered like the fault policies: an explicit
``executor`` field on :class:`MonteCarloConfig` wins, else a scoped
:class:`executor_scope` (what ``--executor`` installs), else the
:data:`EXECUTOR_ENV_VAR` environment variable, else ``auto`` — which
picks threads when the task advertises ``releases_gil`` (the estimator
tasks do; their inner loops are numpy kernels) and processes
otherwise.

Executors yield batches *in trial order* even though parallel chunks
complete out of order; consumers therefore always observe a contiguous
prefix of the sweep, which is exactly the invariant the checkpointed
runner (:mod:`repro.simulation.runner`) needs to resume at any index.

The engine is instrumented for :mod:`repro.obs`: with an active obs
context every trial runs inside a ``"trial"`` span, parallel chunks
ship their spans back as aggregated :class:`~repro.obs.trace.ChunkTrace`
records merged in trial order, and sweeps emit
``RunStarted``/``ChunkDispatched``/``ChunkFellBack``/``RunFinished``
events plus counters.  All of it is off by default, guarded by single
``None`` checks, and none of it touches the trial generators — traced
and untraced runs are bit-identical.

Errors inside a trial follow two regimes.  With ``isolate=False`` (the
estimators' regime) the first exception propagates unchanged, like a
plain loop.  With ``isolate=True`` (the resilient runner's regime) each
failing trial is recorded as a :class:`TrialOutcome` with ``error`` set
and the sweep continues; ``KeyboardInterrupt`` and other
``BaseException`` still propagate in both regimes.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
import warnings
from abc import ABC, abstractmethod
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import InvalidParameterError
from repro.obs.events import (
    ChunkDispatched,
    ChunkFellBack,
    ChunkRetried,
    PoolRespawned,
    RunFinished,
    RunStarted,
    SegmentsReleased,
    TaskRegistered,
    TrialQuarantined,
    active_event_log,
)
from repro.obs.metrics import active_metrics
from repro.obs.progress import active_progress
from repro.obs.trace import (
    TRIAL_SPAN,
    ChunkTrace,
    TraceRecorder,
    active_recorder,
    set_recorder,
    span,
)
from repro.simulation.faults import (
    ChaosPolicy,
    RetryPolicy,
    is_serialization_error,
    resolve_chaos_policy,
    resolve_retry_policy,
)
from repro.simulation.payload import PayloadStore, TaskRef, prime_worker, resolve_task

__all__ = [
    "EXECUTOR_ENV_VAR",
    "MonteCarloConfig",
    "ParallelExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "TrialExecutor",
    "TrialOutcome",
    "TrialTask",
    "WORKERS_ENV_VAR",
    "active_executor_kind",
    "execute_trials",
    "executor_for",
    "executor_scope",
    "run_trial",
    "shutdown_worker_pools",
]

#: Environment variable consulted when ``MonteCarloConfig.workers`` is
#: left unset; lets a CI job force the parallel executor on for an
#: entire test suite without touching call sites.
WORKERS_ENV_VAR = "FULLVIEW_WORKERS"

#: Environment variable selecting the executor backend when neither a
#: config field nor an :class:`executor_scope` names one; lets a CI job
#: drive the whole suite through one backend.  Accepts the same values
#: as ``--executor``: ``serial``, ``thread``, ``process`` or ``auto``.
EXECUTOR_ENV_VAR = "FULLVIEW_EXECUTOR"

#: Recognised executor kinds, in documentation order.
EXECUTOR_KINDS = ("auto", "serial", "thread", "process")

#: A trial task: derive everything from ``rng``, return a small record.
TrialTask = Callable[[int, np.random.Generator], Any]


def _validated_kind(kind: str, source: str) -> str:
    kind = kind.strip().lower()
    if kind not in EXECUTOR_KINDS:
        known = ", ".join(EXECUTOR_KINDS)
        raise InvalidParameterError(
            f"{source} must be one of {known}; got {kind!r}"
        )
    return kind


#: Process-wide scoped executor kind (installed by :class:`executor_scope`);
#: ``None`` falls through to :data:`EXECUTOR_ENV_VAR`.  Parent-only, like
#: the scoped fault policies: workers never consult it.
_ACTIVE_EXECUTOR: Optional[str] = None


def active_executor_kind() -> Optional[str]:
    """The scoped executor kind, if an :class:`executor_scope` installed one."""
    return _ACTIVE_EXECUTOR


class executor_scope:
    """Context manager scoping the executor backend (restores on exit).

    ``--executor`` on the CLI installs one of these around the whole
    command, so every config built inside the experiment — none of
    which sets the ``executor`` field — resolves to the requested
    backend.  ``None`` leaves resolution to the environment variable,
    so a scope built from CLI flags only overrides what the user
    actually passed; an explicit config field always wins over the
    scope, mirroring :class:`~repro.simulation.faults.fault_scope`.
    """

    def __init__(self, kind: Optional[str] = None) -> None:
        self._kind = None if kind is None else _validated_kind(kind, "executor")
        self._previous: Optional[str] = None

    def __enter__(self) -> "executor_scope":
        global _ACTIVE_EXECUTOR
        self._previous = _ACTIVE_EXECUTOR
        if self._kind is not None:
            _ACTIVE_EXECUTOR = self._kind
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE_EXECUTOR
        _ACTIVE_EXECUTOR = self._previous

#: Upper bound on the automatic chunk size; keeps partial results
#: flowing back to the consumer (checkpoints, budgets) on huge sweeps.
_MAX_AUTO_CHUNK = 256

#: Adaptive chunking targets at least this much work per dispatched
#: chunk, so per-chunk costs (task pickling, IPC, future bookkeeping)
#: stay a small fraction of the chunk's runtime.
_TARGET_CHUNK_SECONDS = 0.05


@dataclass(frozen=True)
class MonteCarloConfig:
    """Trial budget, reproducibility and execution settings.

    Attributes
    ----------
    trials:
        Number of independent deployments.
    seed:
        Master seed; each trial gets a spawned child generator.
    use_index:
        Whether fleets build a spatial index before scalar queries
        (identical results either way; the vectorised batch kernels do
        not consult it).
    workers:
        Worker processes for trial execution.  ``1`` runs serially,
        ``> 1`` dispatches chunks to a process pool (bit-identical
        results by construction).  ``None`` — the default — falls back
        to the :data:`WORKERS_ENV_VAR` environment variable, else 1.
    executor:
        Executor backend: ``"serial"``, ``"thread"``, ``"process"`` or
        ``"auto"``.  ``None`` — the default — falls back to the scoped
        :class:`executor_scope`, else :data:`EXECUTOR_ENV_VAR`, else
        ``"auto"``.  Results are bit-identical across all backends; the
        field chooses purely on wall-clock grounds.
    """

    trials: int = 200
    seed: int = 0
    use_index: bool = True
    workers: Optional[int] = None
    executor: Optional[str] = None

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise InvalidParameterError(f"trials must be >= 1, got {self.trials!r}")
        if self.workers is not None and self.workers < 1:
            raise InvalidParameterError(
                f"workers must be >= 1 (or None for the environment default), "
                f"got {self.workers!r}"
            )
        if self.executor is not None:
            object.__setattr__(
                self, "executor", _validated_kind(self.executor, "executor")
            )

    def rng_for_trial(self, trial: int) -> np.random.Generator:
        """The generator for one trial, addressable in O(1).

        Child ``i`` of ``SeedSequence(seed).spawn(trials)`` is exactly
        ``SeedSequence(seed, spawn_key=(i,))``, so trials can be
        (re)played individually and in any order — the parallel
        executor and the checkpointed runner both rely on this for
        bit-identical streams.
        """
        if not (0 <= trial < self.trials):
            raise InvalidParameterError(
                f"trial must be in [0, {self.trials}), got {trial!r}"
            )
        seq = np.random.SeedSequence(self.seed, spawn_key=(trial,))
        return np.random.Generator(np.random.PCG64(seq))

    def rngs(self) -> Iterator[np.random.Generator]:
        """One independent generator per trial, yielded lazily.

        Streams are identical to the historical eager
        ``SeedSequence(seed).spawn(trials)`` list, but generators are
        created on demand, so large ``--full`` trial counts do not
        materialize thousands of generators up front.
        """
        for trial in range(self.trials):
            yield self.rng_for_trial(trial)

    def rngs_list(self) -> List[np.random.Generator]:
        """Deprecated eager shim; address trials with :meth:`rng_for_trial`.

        .. deprecated::
            Materialising one generator per trial defeats the O(1)
            addressability that checkpointing and parallel execution
            are built on.  Call ``rng_for_trial(i)`` for a single
            trial's generator or iterate :meth:`rngs` lazily.
        """
        warnings.warn(
            "MonteCarloConfig.rngs_list() is deprecated; use "
            "rng_for_trial(i) for O(1) access to one trial's generator "
            "(or iterate rngs() lazily)",
            DeprecationWarning,
            stacklevel=2,
        )
        return list(self.rngs())

    def resolved_workers(self) -> int:
        """The effective worker count (explicit field, else environment).

        An unset ``workers`` consults :data:`WORKERS_ENV_VAR`, so a CI
        job can force ``workers=2`` across an entire run; a missing or
        empty variable means serial execution.
        """
        if self.workers is not None:
            return self.workers
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            value = int(raw)
        except ValueError as exc:
            raise InvalidParameterError(
                f"{WORKERS_ENV_VAR} must be an integer >= 1, got {raw!r}"
            ) from exc
        if value < 1:
            raise InvalidParameterError(
                f"{WORKERS_ENV_VAR} must be an integer >= 1, got {raw!r}"
            )
        return value

    def resolved_executor(self) -> str:
        """The effective backend kind (field, scope, environment, auto).

        Resolution mirrors the fault policies: the explicit ``executor``
        field wins, else the scoped kind installed by
        :class:`executor_scope` (what ``--executor`` does), else
        :data:`EXECUTOR_ENV_VAR`, else ``"auto"``.
        """
        if self.executor is not None:
            return self.executor
        if _ACTIVE_EXECUTOR is not None:
            return _ACTIVE_EXECUTOR
        raw = os.environ.get(EXECUTOR_ENV_VAR, "").strip()
        if not raw:
            return "auto"
        return _validated_kind(raw, EXECUTOR_ENV_VAR)


@dataclass(frozen=True)
class TrialOutcome:
    """One trial's result record.

    ``value`` is whatever the task returned (``None`` when the trial
    failed under isolation); ``error`` is ``None`` on success, else the
    ``"ExceptionType: message"`` string the resilient runner records.
    """

    trial: int
    value: Any = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the trial completed without an isolated error."""
        return self.error is None


def _execute_one(
    task: TrialTask, trial: int, rng: np.random.Generator, isolate: bool
) -> TrialOutcome:
    """The untimed trial body shared by both tracing regimes."""
    if not isolate:
        return TrialOutcome(trial=trial, value=task(trial, rng))
    try:
        value = task(trial, rng)
    except Exception as exc:  # fault isolation: record, continue
        return TrialOutcome(trial=trial, error=f"{type(exc).__name__}: {exc}")
    return TrialOutcome(trial=trial, value=value)


def run_trial(
    task: TrialTask, config: MonteCarloConfig, trial: int, isolate: bool = False
) -> TrialOutcome:
    """Execute one trial: derive its generator, run the task, record.

    With ``isolate`` any :class:`Exception` is captured into the
    outcome instead of propagating (``BaseException`` such as
    ``KeyboardInterrupt`` always propagates).  With an active trace
    recorder the task runs inside a ``"trial"`` span and its wall time
    feeds the ``trial_seconds`` histogram; with tracing off (the
    default) the only added cost is this ``None`` check, and outcomes
    are bit-identical either way — the instrumentation never touches
    ``rng``.
    """
    rng = config.rng_for_trial(trial)
    if active_recorder() is None:
        return _execute_one(task, trial, rng, isolate)
    timed = span(TRIAL_SPAN, trial=trial)
    with timed:
        outcome = _execute_one(task, trial, rng, isolate)
    metrics = active_metrics()
    if metrics is not None:
        metrics.observe("trial_seconds", timed.duration_ns / 1e9)
    return outcome


def _chunk_loop(
    task: TrialTask,
    config: MonteCarloConfig,
    trials: Sequence[int],
    isolate: bool,
) -> Tuple[List[TrialOutcome], Optional[BaseException]]:
    """Run trials in order, keeping completed outcomes on interrupt.

    A non-``Exception`` ``BaseException`` (``KeyboardInterrupt``,
    ``SystemExit``) mid-chunk is captured and returned alongside the
    outcomes completed so far, so the parent can surface them before
    re-raising — larger chunks must not coarsen what an interrupt can
    lose.  Plain ``Exception`` keeps propagating (the parent's
    in-process fallback re-runs the chunk and resurfaces it).
    """
    outcomes: List[TrialOutcome] = []
    for trial in trials:
        try:
            outcomes.append(run_trial(task, config, trial, isolate=isolate))
        except BaseException as exc:
            if isinstance(exc, Exception):
                raise
            return outcomes, exc
    return outcomes, None


def _run_chunk(
    task: Union[TrialTask, TaskRef],
    config: MonteCarloConfig,
    trials: Sequence[int],
    isolate: bool,
    trace: bool = False,
    chaos: Optional[ChaosPolicy] = None,
    attempt: int = 0,
) -> Tuple[List[TrialOutcome], Optional[ChunkTrace], Optional[BaseException]]:
    """Run a contiguous chunk of trials (module-level, so it pickles).

    ``task`` is either the callable itself (inline shipping, the
    in-process fallback) or a :class:`~repro.simulation.payload.TaskRef`
    resolved here against this process's payload cache — the first
    chunk of a run in each worker pays one attach-and-unpickle, every
    later chunk a dictionary lookup.

    With ``trace`` a fresh recorder is installed for the chunk (the
    previous recorder — ``None`` in worker processes, the run's own
    recorder when falling back in-process — is restored afterwards)
    and the chunk's spans come back aggregated as a picklable
    :class:`ChunkTrace`, so traces survive the process-pool boundary.
    The third element is a captured mid-chunk interrupt (see
    :func:`_chunk_loop`), ``None`` on a clean run.

    ``chaos`` is the injection seam: an active policy may raise or
    sleep here, *before any trial runs and before the task resolves*,
    so injected faults can never perturb a trial generator — a retried
    chunk (``attempt`` counts resubmissions) re-derives every stream
    bit-identically.
    """
    if chaos is not None:
        chaos.perturb_chunk(trials, attempt)
    if isinstance(task, TaskRef):
        task = resolve_task(task)
    if not trace:
        outcomes, interrupt = _chunk_loop(task, config, trials, isolate)
        return outcomes, None, interrupt
    recorder = TraceRecorder()
    previous = set_recorder(recorder)
    start = time.perf_counter_ns()
    try:
        outcomes, interrupt = _chunk_loop(task, config, trials, isolate)
    finally:
        set_recorder(previous)
    # wall_ns feeds the audited ChunkTrace telemetry channel only — it is
    # carried beside the outcomes and never influences a trial value.
    wall_ns = time.perf_counter_ns() - start  # fvlint: disable=FV008 (telemetry only)
    return outcomes, recorder.to_chunk(tuple(trials), wall_ns), interrupt


class TrialExecutor(ABC):
    """Strategy for executing a sweep of independent seeded trials.

    ``run`` yields lists of :class:`TrialOutcome` covering the requested
    trial indices *in order*: concatenating the batches reproduces the
    sweep exactly, whatever the execution strategy.
    """

    @abstractmethod
    def run(
        self,
        task: TrialTask,
        config: MonteCarloConfig,
        trials: Sequence[int],
        isolate: bool = False,
    ) -> Iterator[List[TrialOutcome]]:
        """Yield outcome batches for ``trials`` in trial order."""


class SerialExecutor(TrialExecutor):
    """Run trials inline, one batch per trial.

    The single-trial batches keep consumers' per-trial semantics (time
    budgets checked before each trial, checkpoints written at exact
    trial counts) identical to a plain ``for`` loop.
    """

    def run(
        self,
        task: TrialTask,
        config: MonteCarloConfig,
        trials: Sequence[int],
        isolate: bool = False,
    ) -> Iterator[List[TrialOutcome]]:
        progress = active_progress()
        advance = progress.advance if progress is not None else None
        for trial in trials:
            batch = [run_trial(task, config, trial, isolate=isolate)]
            if advance is not None:
                advance(1, failed=1 if batch[0].error is not None else 0)
            yield batch


#: Warm process pools, one per worker count, reused across sweeps.
#: Worker startup under a fork-safe start method is expensive (a fresh
#: interpreter importing numpy), so pools live for the process and are
#: only discarded when broken.
_POOL_CACHE: Dict[int, ProcessPoolExecutor] = {}


def _mp_context():
    """A fork-safe multiprocessing context.

    The platform-default ``fork`` start method deadlocks
    probabilistically: workers fork while the pool's feeder thread may
    hold a queue lock, and the child inherits the locked mutex with no
    owner.  ``forkserver`` forks from a clean, single-threaded server
    process (falling back to ``spawn`` where unavailable), which
    removes the hazard entirely.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "forkserver" if "forkserver" in methods else "spawn"
    )


def _pool_for(workers: int, prime: Tuple[TaskRef, ...] = ()) -> ProcessPoolExecutor:
    pool = _POOL_CACHE.get(workers)
    if pool is not None and getattr(pool, "_broken", False):
        # A pool that broke mid-sweep must never be handed out again:
        # every submit on it raises BrokenProcessPool forever.  Discard
        # it here so callers always receive a usable pool.
        _discard_pool(workers)
        pool = None
    if pool is None:
        # ``prime`` pre-resolves the current run's registered tasks in
        # every worker the new pool spawns — the respawn rung of the
        # faults ladder re-attaches its segments before the first
        # resubmitted chunk arrives.  Best-effort only (prime_worker
        # never raises): lazy resolution in _run_chunk is what
        # guarantees correctness, including for workers this pool
        # spawns after the priming run has ended.
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_mp_context(),
            initializer=prime_worker,
            initargs=(prime,),
        )
        _POOL_CACHE[workers] = pool
        metrics = active_metrics()
        if metrics is not None:
            metrics.inc("pool_warmups")
    return pool


def _discard_pool(workers: int) -> None:
    pool = _POOL_CACHE.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_worker_pools() -> None:
    """Shut down every cached worker pool (new sweeps start fresh).

    Rarely needed — pools are reclaimed at interpreter exit — but lets
    long-lived hosts release idle workers deterministically.
    """
    for workers in list(_POOL_CACHE):
        _discard_pool(workers)


class ParallelExecutor(TrialExecutor):
    """Chunked process-pool execution, bit-identical to serial.

    Trials are split into contiguous chunks, dispatched to a process
    pool up front, and yielded chunk by chunk in submission order —
    because every trial's generator is addressable, execution order
    cannot affect results, only wall-clock.  Tasks and configs must
    pickle (the estimator tasks are frozen dataclasses for exactly this
    reason).

    Pools are warm and shared: one pool per worker count lives for the
    process (started via a fork-safe method, see :func:`_mp_context`),
    so only the first parallel sweep pays worker startup.

    Fault handling is a graceful-degradation ladder governed by a
    :class:`~repro.simulation.faults.RetryPolicy`.  A chunk whose pool
    attempt fails (worker raised, pool broke, per-attempt deadline
    expired) is retried with exponential backoff up to
    ``max_retries`` resubmissions; a broken or timed-out pool is
    discarded and respawned up to ``max_pool_respawns`` times; when the
    respawn budget is spent the rest of the sweep runs in-process
    serially — the sweep *completes* in every regime, it only gets
    slower.  Under ``isolate=True`` a chunk that exhausts its retries
    is bisected down to the offending trial, which is quarantined as a
    failed :class:`TrialOutcome` while every other trial's result
    survives.  Task-level exceptions keep their usual regime:
    propagated when ``isolate=False`` (re-raised by the in-process
    re-execution with their original type), recorded per trial when
    ``isolate=True``.

    Parameters
    ----------
    workers:
        Worker process count (>= 1).
    chunk_size:
        Trials per dispatched chunk.  ``None`` — the default — sizes
        chunks adaptively: the sweep's first trial runs in-process as a
        timed probe, and the remaining trials are chunked so each chunk
        carries at least :data:`_TARGET_CHUNK_SECONDS` of work (capped
        by :data:`_MAX_AUTO_CHUNK`, and never so large that workers sit
        idle).  The probe is trial 0 of the sweep, so outcomes stay in
        trial order and bit-identical — adaptivity only moves chunk
        boundaries, which cannot affect results.
    retry:
        Deadlines/retry/degradation knobs; ``None`` resolves the scoped
        policy (:func:`~repro.simulation.faults.fault_scope`), else the
        ``FULLVIEW_MAX_RETRIES`` / ``FULLVIEW_CHUNK_TIMEOUT``
        environment defaults.
    chaos:
        Fault-injection profile; ``None`` resolves the scoped policy,
        else ``FULLVIEW_CHAOS``, else no injection.  Chaos fires only
        at the worker-boundary seam of :func:`_run_chunk` — never in
        the in-process fallback and never in the probe — so results
        remain bit-identical to a fault-free run.
    """

    def __init__(
        self,
        workers: int,
        chunk_size: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        chaos: Optional[ChaosPolicy] = None,
    ) -> None:
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers!r}")
        if chunk_size is not None and chunk_size < 1:
            raise InvalidParameterError(
                f"chunk_size must be >= 1, got {chunk_size!r}"
            )
        self.workers = workers
        self.chunk_size = chunk_size
        self.retry = resolve_retry_policy(retry)
        self.chaos = resolve_chaos_policy(chaos)

    def _adaptive_size(self, probe_seconds: float, remaining: int) -> int:
        """Chunk size targeting ≥ 50 ms of probed per-trial work."""
        if probe_seconds > 0:
            size = math.ceil(_TARGET_CHUNK_SECONDS / probe_seconds)
        else:
            size = _MAX_AUTO_CHUNK
        size = max(1, min(size, _MAX_AUTO_CHUNK))
        # Never chunk so coarsely that some workers get nothing.
        return min(size, max(1, math.ceil(remaining / self.workers)))

    def _chunks(self, trials: Sequence[int], size: Optional[int] = None) -> List[Sequence[int]]:
        if size is None:
            size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(len(trials) / (self.workers * 4)))
            size = min(size, _MAX_AUTO_CHUNK)
        return [trials[i : i + size] for i in range(0, len(trials), size)]

    def run(
        self,
        task: TrialTask,
        config: MonteCarloConfig,
        trials: Sequence[int],
        isolate: bool = False,
    ) -> Iterator[List[TrialOutcome]]:
        trials = list(trials)
        if not trials:
            return
        recorder = active_recorder()
        trace = recorder is not None
        log = active_event_log()
        metrics = active_metrics()
        progress = active_progress()
        retry = self.retry
        probe_pair = None
        if self.chunk_size is None:
            # Timed in-process probe of the sweep's first trial; its
            # wall time drives the chunk size for the rest.
            probe_start = time.perf_counter()
            probe_pair = _run_chunk(task, config, (trials[0],), isolate, trace)
            probe_seconds = time.perf_counter() - probe_start
            rest = trials[1:]
            size = self._adaptive_size(probe_seconds, len(rest))
            chunks = self._chunks(rest, size) if rest else []
            if probe_pair[2] is not None:
                # The probe itself was interrupted: surface what it
                # produced, dispatch nothing.
                chunks = []
            if metrics is not None:
                metrics.set_gauge("parallel_chunk_size", float(size))
                metrics.set_gauge("parallel_probe_seconds", probe_seconds)
        else:
            chunks = self._chunks(trials)
            if metrics is not None:
                metrics.set_gauge("parallel_chunk_size", float(self.chunk_size))

        def fall_back(index: int, chunk: Sequence[int], reason: str):
            if metrics is not None:
                metrics.inc("chunk_fallbacks")
            if progress is not None:
                progress.note("fallbacks")
            if log is not None:
                log.emit(
                    ChunkFellBack(
                        chunk=index,
                        first_trial=chunk[0],
                        trials=len(chunk),
                        reason=reason,
                    )
                )
            return _run_chunk(task, config, tuple(chunk), isolate, trace)

        def merge(pair) -> Tuple[List[TrialOutcome], Optional[BaseException]]:
            batch, chunk_trace, interrupt = pair
            if chunk_trace is not None and recorder is not None:
                recorder.merge_chunk(chunk_trace)
                if metrics is not None:
                    for _trial, dur_ns in chunk_trace.trial_ns:
                        metrics.observe("trial_seconds", dur_ns / 1e9)
            # Every path to a yield funnels through here (probe, pool
            # result, fallback, quarantine), so one advance covers them
            # all — parent-side, after the batch exists.
            if progress is not None:
                progress.advance(
                    len(batch), failed=sum(1 for o in batch if not o.ok)
                )
            return batch, interrupt

        chaos = self.chaos
        futures: List[Optional[Future]] = [None] * len(chunks)
        attempts = [0] * len(chunks)
        pool: Optional[ProcessPoolExecutor] = None
        respawns_left = retry.max_pool_respawns
        degraded_reason: Optional[str] = None

        # Register the task once per run: big arrays into shared
        # segments, the pickle body into one more, and every chunk
        # submission below ships only the content-digest handle.  A
        # task that cannot pickle cannot register either — it ships
        # inline instead, and the existing serialization fallback
        # applies unchanged.
        payload: Optional[PayloadStore] = None
        task_ref: Optional[TaskRef] = None
        shipped: Union[TrialTask, TaskRef] = task
        if chunks:
            try:
                payload = PayloadStore()
                task_ref = payload.register_task(task)
                shipped = task_ref
            except Exception:
                if payload is not None:
                    payload.close()
                payload = None
                task_ref = None
                shipped = task
            else:
                if metrics is not None:
                    metrics.inc("payload_tasks_registered")
                    metrics.inc("payload_bytes_shipped", payload.payload_bytes)
                    metrics.set_gauge(
                        "payload_segments_active", float(len(payload.segment_names()))
                    )
                if log is not None:
                    log.emit(
                        TaskRegistered(
                            digest=task_ref.digest,
                            payload_bytes=payload.payload_bytes,
                            segments=len(payload.segment_names()),
                        )
                    )
        prime = (task_ref,) if task_ref is not None else ()

        def submit(index: int) -> Future:
            chunk = chunks[index]
            return pool.submit(
                _run_chunk,
                shipped,
                config,
                tuple(chunk),
                isolate,
                trace,
                chaos,
                attempts[index],
            )

        def respawn(reason: str) -> None:
            # One rung down the ladder: discard the broken/hung pool
            # and start a fresh one (primed with this run's task
            # handle, so its workers re-attach the named segments
            # before the first resubmitted chunk arrives), unless the
            # respawn budget is spent — then degrade to in-process
            # serial for the rest of the sweep.
            nonlocal pool, respawns_left, degraded_reason
            _discard_pool(self.workers)
            pool = None
            if respawns_left <= 0:
                degraded_reason = reason
                return
            respawns_left -= 1
            try:
                pool = _pool_for(self.workers, prime)
            except Exception:
                degraded_reason = reason
                return
            if metrics is not None:
                metrics.inc("pool_respawns")
            if progress is not None:
                progress.note("respawns")
            if log is not None:
                log.emit(PoolRespawned(workers=self.workers, reason=reason))

        def resubmit_pending(start: int) -> None:
            # A discarded pool took its queued futures with it: keep
            # every chunk that already completed cleanly, re-queue the
            # rest on the fresh pool (same attempt index, so chaos
            # decisions replay deterministically).
            nonlocal pool, degraded_reason
            for i in range(start, len(chunks)):
                f = futures[i]
                if (
                    f is not None
                    and f.done()
                    and not f.cancelled()
                    and f.exception() is None
                ):
                    continue
                if pool is None:
                    futures[i] = None
                    continue
                try:
                    futures[i] = submit(i)
                except Exception:
                    _discard_pool(self.workers)
                    pool = None
                    degraded_reason = "submit-failed"
                    futures[i] = None

        def quarantine(
            index: int, chunk: Sequence[int], failure: str
        ) -> Tuple[List[TrialOutcome], None, Optional[BaseException]]:
            # Bisect an exhausted chunk down to the offending trial(s).
            # Parts run through the pool at the chunk's final attempt
            # index (cleared probabilistic faults stay cleared); a part
            # that still dies at the worker boundary is split, and a
            # single trial that keeps dying is recorded as a failed
            # outcome while every other trial's result survives.
            attempt_floor = attempts[index]
            if chaos is not None:
                attempt_floor = max(attempt_floor, chaos.attempts)
            outcomes: List[TrialOutcome] = []
            state: Dict[str, Any] = {"interrupt": None, "error": failure}

            def attempt_part(part: Sequence[int]):
                if pool is None:
                    # Degraded mid-bisection: in-process, no chaos —
                    # the parent is not a worker.
                    return _run_chunk(task, config, tuple(part), isolate, trace)
                future = None
                try:
                    future = pool.submit(
                        _run_chunk,
                        shipped,
                        config,
                        tuple(part),
                        isolate,
                        trace,
                        chaos,
                        attempt_floor,
                    )
                    return future.result(timeout=retry.chunk_timeout)
                except FuturesTimeoutError:
                    future.cancel()
                    state["error"] = "TimeoutError: chunk attempt exceeded deadline"
                    respawn("timeout")
                    return None
                except BrokenExecutor as exc:
                    state["error"] = f"{type(exc).__name__}: worker died"
                    respawn("broken-pool")
                    return None
                except Exception as exc:
                    state["error"] = f"{type(exc).__name__}: {exc}"
                    return None

            def run_part(part: Sequence[int]) -> None:
                if state["interrupt"] is not None:
                    return
                pair = attempt_part(part)
                if pair is None:
                    if len(part) == 1:
                        trial = int(part[0])
                        if metrics is not None:
                            metrics.inc("trials_quarantined")
                        if progress is not None:
                            progress.note("quarantined")
                        if log is not None:
                            log.emit(
                                TrialQuarantined(trial=trial, error=state["error"])
                            )
                        outcomes.append(
                            TrialOutcome(trial=trial, error=state["error"])
                        )
                        return
                    mid = len(part) // 2
                    run_part(part[:mid])
                    run_part(part[mid:])
                    return
                batch, chunk_trace, part_interrupt = pair
                outcomes.extend(batch)
                if chunk_trace is not None and recorder is not None:
                    recorder.merge_chunk(chunk_trace)
                    if metrics is not None:
                        for _trial, dur_ns in chunk_trace.trial_ns:
                            metrics.observe("trial_seconds", dur_ns / 1e9)
                if part_interrupt is not None:
                    state["interrupt"] = part_interrupt

            run_part(tuple(chunk))
            return outcomes, None, state["interrupt"]

        if chunks:
            try:
                pool = _pool_for(self.workers, prime)
                for index in range(len(chunks)):
                    futures[index] = submit(index)
            except Exception:
                # The pool could not even accept work: bottom rung,
                # the whole sweep runs in-process.
                _discard_pool(self.workers)
                pool = None
                degraded_reason = "submit-failed"
                futures = [None] * len(chunks)
        if probe_pair is not None:
            # The probe is trial 0 of the sweep: yield it first, while
            # the pool is already chewing on the dispatched chunks.
            batch, interrupt = merge(probe_pair)
            yield batch
            if interrupt is not None:
                raise interrupt
        if not chunks:
            return
        if pool is not None:
            if log is not None:
                for index, chunk in enumerate(chunks):
                    log.emit(
                        ChunkDispatched(
                            chunk=index, first_trial=chunk[0], trials=len(chunk)
                        )
                    )
            if metrics is not None:
                metrics.inc("chunks_dispatched", len(chunks))
        try:
            for index, chunk in enumerate(chunks):
                pair = None
                reason: Optional[str] = None
                retryable = True
                failure = "worker-boundary failure"
                while True:
                    future = futures[index]
                    if pool is None or future is None:
                        break
                    infra = False
                    try:
                        pair = future.result(timeout=retry.chunk_timeout)
                        break
                    except FuturesTimeoutError:
                        future.cancel()
                        reason = "timeout"
                        infra = True
                        failure = "TimeoutError: chunk attempt exceeded deadline"
                    except BrokenExecutor as exc:
                        reason = "broken-pool"
                        infra = True
                        failure = f"{type(exc).__name__}: worker died"
                    except Exception as exc:
                        reason = "worker-error"
                        # A task that cannot cross the process boundary
                        # (pickle raises PicklingError for lambdas but
                        # AttributeError/TypeError for local functions
                        # and unpicklable arguments) fails identically
                        # on every attempt; no retry can fix that —
                        # straight to the in-process fallback.
                        if is_serialization_error(exc):
                            retryable = False
                        failure = f"{type(exc).__name__}: {exc}"
                    futures[index] = None
                    if infra:
                        # A hung or dead pool poisons every queued
                        # chunk: respawn it and re-queue what has not
                        # finished yet.
                        respawn(reason)
                        if pool is not None:
                            resubmit_pending(index + 1)
                    if pool is None or not retryable:
                        break
                    attempts[index] += 1
                    if attempts[index] > retry.max_retries:
                        break
                    if metrics is not None:
                        metrics.inc("chunk_retries")
                    if progress is not None:
                        progress.note("retries")
                    if log is not None:
                        log.emit(
                            ChunkRetried(
                                chunk=index,
                                first_trial=chunk[0],
                                trials=len(chunk),
                                attempt=attempts[index],
                                reason=reason,
                            )
                        )
                    delay = retry.backoff_seconds(
                        config.seed, int(chunk[0]), attempts[index]
                    )
                    if delay > 0.0:
                        time.sleep(delay)
                    try:
                        futures[index] = submit(index)
                    except Exception:
                        _discard_pool(self.workers)
                        pool = None
                        degraded_reason = "submit-failed"
                        break
                if pair is None:
                    if pool is None:
                        pair = fall_back(
                            index, chunk, degraded_reason or reason or "degraded"
                        )
                    elif not retryable:
                        pair = fall_back(index, chunk, reason)
                    elif isolate:
                        pair = quarantine(index, chunk, failure)
                    else:
                        # Retries exhausted without isolation: the
                        # in-process re-run either succeeds (the fault
                        # was infrastructure) or re-raises the task's
                        # real error with its original type.
                        pair = fall_back(index, chunk, reason)
                batch, interrupt = merge(pair)
                yield batch
                if interrupt is not None:
                    raise interrupt
        finally:
            # Abandoned generators (time budget, interrupt) must not
            # leave queued chunks running; the shared pool itself
            # stays warm for the next sweep.
            for future in futures:
                if future is not None:
                    future.cancel()
            # The run's segments die with the run — unlink is
            # unconditional (a straggler chunk still mapping one only
            # delays the page reclaim, never the name's removal).
            if payload is not None:
                released = len(payload.segment_names())
                released_bytes = payload.payload_bytes
                payload.close()
                if metrics is not None:
                    metrics.set_gauge("payload_segments_active", 0.0)
                if log is not None:
                    log.emit(
                        SegmentsReleased(
                            segments=released, payload_bytes=released_bytes
                        )
                    )


def _thread_chunk(
    task: TrialTask,
    config: MonteCarloConfig,
    trials: Sequence[int],
    isolate: bool,
    chaos: Optional[ChaosPolicy],
    attempt: int,
) -> Tuple[List[TrialOutcome], Optional[BaseException]]:
    """One chunk on a worker thread: chaos seam, then the plain loop.

    No trace plumbing is needed: the run's :class:`TraceRecorder` is
    thread-safe and span stacks are thread-local, so worker threads
    record spans (and observe metrics) directly into the parent's
    active obs context — the payload plane is bypassed entirely
    because there is no boundary to cross.
    """
    if chaos is not None:
        chaos.perturb_chunk(trials, attempt)
    return _chunk_loop(task, config, trials, isolate)


class ThreadExecutor(TrialExecutor):
    """Chunked thread-pool execution, bit-identical to serial.

    The third backend: the same contiguous chunks and in-order yields
    as :class:`ParallelExecutor`, dispatched to worker *threads*.  No
    pickling, no shared-memory segments, no warm-pool bookkeeping —
    the task object is shared by reference — so the backend wins
    whenever the task spends its time inside numpy kernels that
    release the GIL (the batch coverage kernels in
    :mod:`repro.core.batch` do).  Tasks that close over anything,
    picklable or not, run unmodified.

    The faults ladder is mirrored minus its process rungs: chaos
    injects at the chunk seam (:func:`_thread_chunk`), failed attempts
    retry with the same deterministic backoff up to ``max_retries``,
    an exhausted chunk bisects down to the offending trial under
    ``isolate=True`` (quarantine) or re-runs in the main thread
    without chaos otherwise, re-raising the task's real error with
    its original type.  There is no respawn rung — threads cannot be
    killed, so a chunk that times out is simply retried on a fresh
    future while the hung thread's eventual result is discarded.
    """

    def __init__(
        self,
        workers: int,
        chunk_size: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        chaos: Optional[ChaosPolicy] = None,
    ) -> None:
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers!r}")
        if chunk_size is not None and chunk_size < 1:
            raise InvalidParameterError(
                f"chunk_size must be >= 1, got {chunk_size!r}"
            )
        self.workers = workers
        self.chunk_size = chunk_size
        self.retry = resolve_retry_policy(retry)
        self.chaos = resolve_chaos_policy(chaos)

    _adaptive_size = ParallelExecutor._adaptive_size
    _chunks = ParallelExecutor._chunks

    def run(
        self,
        task: TrialTask,
        config: MonteCarloConfig,
        trials: Sequence[int],
        isolate: bool = False,
    ) -> Iterator[List[TrialOutcome]]:
        trials = list(trials)
        if not trials:
            return
        log = active_event_log()
        metrics = active_metrics()
        progress = active_progress()
        retry = self.retry
        chaos = self.chaos
        probe_pair = None
        if self.chunk_size is None:
            # Same adaptive sizing as the process backend: trial 0 runs
            # inline as a timed probe (no chaos — the main thread is
            # not a worker) and sizes the chunks for the rest.
            probe_start = time.perf_counter()
            probe_pair = _chunk_loop(task, config, (trials[0],), isolate)
            probe_seconds = time.perf_counter() - probe_start
            rest = trials[1:]
            size = self._adaptive_size(probe_seconds, len(rest))
            chunks = self._chunks(rest, size) if rest else []
            if probe_pair[1] is not None:
                chunks = []
            if metrics is not None:
                metrics.set_gauge("parallel_chunk_size", float(size))
                metrics.set_gauge("parallel_probe_seconds", probe_seconds)
        else:
            chunks = self._chunks(trials)
            if metrics is not None:
                metrics.set_gauge("parallel_chunk_size", float(self.chunk_size))

        def fall_back(index: int, chunk: Sequence[int], reason: str):
            if metrics is not None:
                metrics.inc("chunk_fallbacks")
            if progress is not None:
                progress.note("fallbacks")
            if log is not None:
                log.emit(
                    ChunkFellBack(
                        chunk=index,
                        first_trial=chunk[0],
                        trials=len(chunk),
                        reason=reason,
                    )
                )
            return _chunk_loop(task, config, tuple(chunk), isolate)

        def advance(batch: List[TrialOutcome]) -> None:
            # Parent-side, right before the batch is yielded — worker
            # threads never touch the tracker.
            if progress is not None:
                progress.advance(
                    len(batch), failed=sum(1 for o in batch if not o.ok)
                )

        futures: List[Optional[Future]] = [None] * len(chunks)
        attempts = [0] * len(chunks)
        pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="fv-trial"
        )

        def submit(index: int) -> Future:
            chunk = chunks[index]
            return pool.submit(
                _thread_chunk,
                task,
                config,
                tuple(chunk),
                isolate,
                chaos,
                attempts[index],
            )

        def quarantine(
            index: int, chunk: Sequence[int], failure: str
        ) -> Tuple[List[TrialOutcome], Optional[BaseException]]:
            # Bisect an exhausted chunk down to the offending trial(s),
            # mirroring the process backend: parts run at the chunk's
            # final attempt index (cleared probabilistic faults stay
            # cleared), and a single trial that keeps dying is recorded
            # as a failed outcome while every other result survives.
            attempt_floor = attempts[index]
            if chaos is not None:
                attempt_floor = max(attempt_floor, chaos.attempts)
            outcomes: List[TrialOutcome] = []
            state: Dict[str, Any] = {"interrupt": None, "error": failure}

            def attempt_part(part: Sequence[int]):
                future = pool.submit(
                    _thread_chunk,
                    task,
                    config,
                    tuple(part),
                    isolate,
                    chaos,
                    attempt_floor,
                )
                try:
                    return future.result(timeout=retry.chunk_timeout)
                except FuturesTimeoutError:
                    future.cancel()
                    state["error"] = "TimeoutError: chunk attempt exceeded deadline"
                    return None
                except Exception as exc:
                    state["error"] = f"{type(exc).__name__}: {exc}"
                    return None

            def run_part(part: Sequence[int]) -> None:
                if state["interrupt"] is not None:
                    return
                pair = attempt_part(part)
                if pair is None:
                    if len(part) == 1:
                        trial = int(part[0])
                        if metrics is not None:
                            metrics.inc("trials_quarantined")
                        if progress is not None:
                            progress.note("quarantined")
                        if log is not None:
                            log.emit(
                                TrialQuarantined(trial=trial, error=state["error"])
                            )
                        outcomes.append(
                            TrialOutcome(trial=trial, error=state["error"])
                        )
                        return
                    mid = len(part) // 2
                    run_part(part[:mid])
                    run_part(part[mid:])
                    return
                batch, part_interrupt = pair
                outcomes.extend(batch)
                if part_interrupt is not None:
                    state["interrupt"] = part_interrupt

            run_part(tuple(chunk))
            return outcomes, state["interrupt"]

        try:
            for index in range(len(chunks)):
                futures[index] = submit(index)
            if probe_pair is not None:
                batch, interrupt = probe_pair
                advance(batch)
                yield batch
                if interrupt is not None:
                    raise interrupt
            if not chunks:
                return
            if log is not None:
                for index, chunk in enumerate(chunks):
                    log.emit(
                        ChunkDispatched(
                            chunk=index, first_trial=chunk[0], trials=len(chunk)
                        )
                    )
            if metrics is not None:
                metrics.inc("chunks_dispatched", len(chunks))
            for index, chunk in enumerate(chunks):
                pair = None
                reason: Optional[str] = None
                failure = "worker-boundary failure"
                while True:
                    future = futures[index]
                    try:
                        pair = future.result(timeout=retry.chunk_timeout)
                        break
                    except FuturesTimeoutError:
                        # The thread cannot be killed; discard its
                        # future (a late result is simply dropped) and
                        # retry on a fresh one.
                        future.cancel()
                        reason = "timeout"
                        failure = "TimeoutError: chunk attempt exceeded deadline"
                    except Exception as exc:
                        reason = "worker-error"
                        failure = f"{type(exc).__name__}: {exc}"
                    futures[index] = None
                    attempts[index] += 1
                    if attempts[index] > retry.max_retries:
                        break
                    if metrics is not None:
                        metrics.inc("chunk_retries")
                    if progress is not None:
                        progress.note("retries")
                    if log is not None:
                        log.emit(
                            ChunkRetried(
                                chunk=index,
                                first_trial=chunk[0],
                                trials=len(chunk),
                                attempt=attempts[index],
                                reason=reason,
                            )
                        )
                    delay = retry.backoff_seconds(
                        config.seed, int(chunk[0]), attempts[index]
                    )
                    if delay > 0.0:
                        time.sleep(delay)
                    futures[index] = submit(index)
                if pair is None:
                    if isolate:
                        pair = quarantine(index, chunk, failure)
                    else:
                        # Retries exhausted without isolation: re-run
                        # in the main thread without chaos — the real
                        # error (if any) re-raises with its original
                        # type.
                        pair = fall_back(index, chunk, reason or "exhausted")
                batch, interrupt = pair
                advance(batch)
                yield batch
                if interrupt is not None:
                    raise interrupt
        finally:
            for future in futures:
                if future is not None:
                    future.cancel()
            pool.shutdown(wait=False, cancel_futures=True)


def executor_for(
    config: MonteCarloConfig, task: Optional[TrialTask] = None
) -> TrialExecutor:
    """The executor a config asks for.

    One worker always means :class:`SerialExecutor`.  With more, the
    resolved backend kind decides (see
    :meth:`MonteCarloConfig.resolved_executor`); ``auto`` picks
    :class:`ThreadExecutor` when the task advertises ``releases_gil``
    — the estimator tasks do, their inner loops being numpy kernels
    that drop the GIL — and :class:`ParallelExecutor` otherwise (an
    unknown task is assumed to hold the GIL, where processes are the
    safe bet).
    """
    workers = config.resolved_workers()
    kind = config.resolved_executor()
    if kind == "auto":
        kind = "thread" if getattr(task, "releases_gil", False) else "process"
    if workers <= 1 or kind == "serial":
        kind = "serial"
        executor: TrialExecutor = SerialExecutor()
    elif kind == "thread":
        executor = ThreadExecutor(workers)
    else:
        kind = "process"
        executor = ParallelExecutor(workers)
    metrics = active_metrics()
    if metrics is not None:
        metrics.inc(f"executor_selected_{kind}")
        metrics.set_gauge("executor_workers", float(workers))
    return executor


def execute_trials(
    task: TrialTask,
    config: MonteCarloConfig,
    *,
    executor: Optional[TrialExecutor] = None,
    isolate: bool = False,
) -> List[TrialOutcome]:
    """Run every trial of ``config`` through an executor, in order.

    The one-line entry point the estimators use: results are identical
    for every executor, so callers choose purely on wall-clock grounds
    (``executor=None`` respects ``config.workers`` and
    ``config.executor``, with ``auto`` picking threads for tasks that
    release the GIL).  With an active obs context the sweep is
    bracketed by ``RunStarted``/``RunFinished`` events and tallies the
    ``trials_completed``/``trials_failed`` counters; instrumentation
    is inert (two ``None`` checks) otherwise.
    """
    executor = executor if executor is not None else executor_for(config, task)
    log = active_event_log()
    metrics = active_metrics()
    progress = active_progress()
    if log is not None:
        log.emit(
            RunStarted(
                trials=config.trials,
                seed=config.seed,
                workers=getattr(executor, "workers", 1),
            )
        )
    if progress is not None:
        progress.begin(config.trials)
    start_wall = time.perf_counter_ns()
    start_cpu = time.process_time_ns()
    outcomes: List[TrialOutcome] = []
    for batch in executor.run(task, config, range(config.trials), isolate=isolate):
        outcomes.extend(batch)
    completed = sum(1 for outcome in outcomes if outcome.ok)
    failed = len(outcomes) - completed
    if metrics is not None:
        metrics.inc("trials_completed", completed)
        metrics.inc("trials_failed", failed)
    if log is not None:
        log.emit(
            RunFinished(
                completed=completed,
                failed=failed,
                wall_ns=time.perf_counter_ns() - start_wall,
                cpu_ns=time.process_time_ns() - start_cpu,
            )
        )
    if progress is not None:
        progress.finish()
    return outcomes
