"""A resilient Monte-Carlo executor: fault isolation, checkpoints, budgets.

The plain estimators in :mod:`repro.simulation.montecarlo` run a tight
``for rng in config.rngs()`` loop: one crashing trial kills the sweep,
an interrupted sweep restarts from zero, and a sweep never stops early.
Production-scale trial counts need the opposite properties, and this
module provides them around *any* per-trial function:

- **Fault isolation** — a trial that raises records a
  :class:`TrialFailure` (index + error) and the sweep continues; the
  final estimate can be widened to bound the effect of the lost trials
  (:meth:`ResilientResult.widened_interval`).
- **Checkpointing** — periodic atomic JSON checkpoints carry the seed,
  the next trial index and the partial tallies.  Because every trial's
  generator is addressable (:meth:`MonteCarloConfig.rng_for_trial`), a
  resumed sweep replays the remaining trials with bit-identical
  streams, so interrupt-at-any-index + resume equals one uninterrupted
  run, exactly.
- **Time budgets** — an optional wall-clock budget stops the sweep
  between trials, returning a partial result flagged ``truncated`` (and
  a checkpoint to resume from).

The trial function receives ``(trial_index, rng)`` and returns a number
(booleans for Bernoulli sweeps, e.g. lifetimes for resilience sweeps).
It must derive all randomness from ``rng`` for determinism to hold.

Execution is delegated to the shared engine
(:mod:`repro.simulation.engine`): the config's ``workers`` setting
selects serial or process-parallel execution, and because executors
yield outcomes in trial order the checkpoint always holds a contiguous
prefix of the sweep — checkpoint/resume and parallelism compose, with
bit-identical results either way.  Under the parallel executor the time
budget and ``BaseException`` handling act at chunk granularity (the
serial executor keeps the historical per-trial granularity), and a
trial function that cannot cross the process boundary (e.g. a closure)
transparently falls back to in-process execution.

Checkpoints are written durably (fsynced before the atomic rename, so
a crash can never leave a torn file behind the rename) and stamped
with the package version and seed for provenance.  With an active
:mod:`repro.obs` context the sweep emits ``RunStarted`` /
``CheckpointWritten`` / ``RunFinished`` events and checkpoint/trial
counters; as everywhere, telemetry is off by default and never touches
the trial generators.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from repro._version import __version__
from repro.deployment.uniform import UniformDeployment
from repro.errors import CheckpointError, InvalidParameterError
from repro.ioutil import (
    config_digest,
    stamp_checksum,
    verify_checksum,
    write_json_atomic,
)
from repro.obs.events import (
    CheckpointRecovered,
    CheckpointWritten,
    RunFinished,
    RunStarted,
    active_event_log,
)
from repro.obs.metrics import active_metrics
from repro.obs.progress import active_progress
from repro.simulation.engine import MonteCarloConfig, executor_for
from repro.simulation.faults import ChaosPolicy, resolve_chaos_policy
from repro.simulation.montecarlo import PointProbabilityTask
from repro.simulation.statistics import BernoulliEstimate, wilson_interval

__all__ = [
    "CHECKPOINT_BACKUP_FILENAME",
    "CHECKPOINT_FILENAME",
    "CHECKPOINT_FORMAT",
    "ResilientResult",
    "TrialFailure",
    "TrialFn",
    "make_point_probability_trial",
    "run_resilient_trials",
]

#: Schema tag written into every checkpoint file.
CHECKPOINT_FORMAT = "fullview-mc-checkpoint-v1"

#: File name used inside a checkpoint directory.
CHECKPOINT_FILENAME = "checkpoint.json"

#: Rotated copy of the previous checkpoint, kept as the recovery source
#: when the main file is found corrupt or truncated at resume time.
CHECKPOINT_BACKUP_FILENAME = CHECKPOINT_FILENAME + ".bak"

#: Appended to corruption errors so the operator knows the way out.
_RECOVERY_HINT = (
    "delete the checkpoint directory (or run with resume disabled) to "
    "start the sweep fresh"
)

TrialFn = Callable[[int, np.random.Generator], Union[bool, int, float]]


@dataclass(frozen=True)
class TrialFailure:
    """One isolated per-trial exception."""

    trial: int
    error: str


@dataclass(frozen=True)
class ResilientResult:
    """Outcome of a resilient sweep (possibly partial).

    Attributes
    ----------
    requested:
        Trials the configuration asked for.
    outcomes:
        ``(trial, value)`` pairs for every trial that completed, in
        trial order.  Values are floats (booleans record as 0.0/1.0).
    failures:
        Isolated per-trial exceptions, in trial order.
    truncated:
        Whether the wall-clock budget stopped the sweep early.
    resumed_trials:
        How many of the outcomes/failures were restored from a
        checkpoint rather than executed in this call.
    """

    requested: int
    outcomes: Tuple[Tuple[int, float], ...]
    failures: Tuple[TrialFailure, ...]
    truncated: bool
    resumed_trials: int = 0

    @property
    def completed(self) -> int:
        """Trials that ran to completion."""
        return len(self.outcomes)

    @property
    def attempted(self) -> int:
        """Trials that ran at all (completed + failed)."""
        return len(self.outcomes) + len(self.failures)

    @property
    def values(self) -> Tuple[float, ...]:
        """Completed trial values, in trial order."""
        return tuple(value for _, value in self.outcomes)

    @property
    def successes(self) -> int:
        """Count of truthy outcomes (Bernoulli sweeps)."""
        return sum(1 for _, value in self.outcomes if value)

    @property
    def estimate(self) -> Optional[BernoulliEstimate]:
        """Bernoulli estimate over the completed trials, if any ran."""
        if not self.outcomes:
            return None
        return BernoulliEstimate(successes=self.successes, trials=self.completed)

    def widened_interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """A Wilson interval widened to bound the lost trials.

        Failed trials could have gone either way, so the lower bound
        counts them all as failures and the upper bound counts them all
        as successes.  With no failures this is the plain Wilson
        interval over the completed trials.
        """
        if self.attempted == 0:
            raise InvalidParameterError("no trials attempted; nothing to estimate")
        lower = wilson_interval(self.successes, self.attempted, confidence)[0]
        upper = wilson_interval(
            self.successes + len(self.failures), self.attempted, confidence
        )[1]
        return (lower, upper)


def _checkpoint_path(checkpoint_dir: Union[str, Path]) -> Path:
    return Path(checkpoint_dir) / CHECKPOINT_FILENAME


def _backup_path(path: Path) -> Path:
    return path.with_name(CHECKPOINT_BACKUP_FILENAME)


def _write_checkpoint(
    path: Path,
    config: MonteCarloConfig,
    next_trial: int,
    outcomes: List[Tuple[int, float]],
    failures: List[TrialFailure],
    chaos: Optional[ChaosPolicy] = None,
    write_index: int = 0,
) -> None:
    payload = stamp_checksum(
        {
            "format": CHECKPOINT_FORMAT,
            "version": __version__,
            # The same canonical digest the run ledger and the coverage
            # service cache use, so a checkpoint can be matched to its
            # ledger row and cache entries by eye.
            "config_digest": config_digest(
                {"seed": config.seed, "trials": config.trials}
            ),
            "seed": config.seed,
            "trials": config.trials,
            "next_trial": next_trial,
            "outcomes": [[trial, value] for trial, value in outcomes],
            "failures": [{"trial": f.trial, "error": f.error} for f in failures],
        }
    )
    # Rotate the previous checkpoint to the .bak slot before publishing
    # the new one: if the new file is later found corrupt at rest, the
    # backup still holds a valid (merely older) resume point.
    if path.exists():
        try:
            os.replace(path, _backup_path(path))
        except OSError:
            pass
    # Durable atomic write: fsync before the rename, so a crash can
    # never publish a torn checkpoint over a good one.
    write_json_atomic(path, payload)
    if chaos is not None and chaos.corrupts_checkpoint(write_index):
        # The checkpoint-write chaos seam: model corruption *at rest*
        # (a torn sector, a truncating crash) by chopping the published
        # file after the durable write succeeded.
        text = path.read_text()
        path.write_text(text[: max(1, len(text) // 2)])
    metrics = active_metrics()
    if metrics is not None:
        metrics.inc("checkpoint_writes")
    log = active_event_log()
    if log is not None:
        log.emit(
            CheckpointWritten(path=str(path), checkpoint_kind="trial", next_trial=next_trial)
        )


def _parse_checkpoint(path: Path) -> dict:
    """Read and integrity-check one checkpoint file (no config checks).

    Raises :class:`CheckpointError` for every *corruption* shape —
    unreadable file, truncated/invalid JSON, wrong format tag, failed
    checksum — which is exactly the class of failure the backup file
    can recover from.
    """
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {exc}; {_RECOVERY_HINT}"
        ) from exc
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path} is not a {CHECKPOINT_FORMAT} checkpoint; {_RECOVERY_HINT}"
        )
    if not verify_checksum(payload):
        raise CheckpointError(
            f"checkpoint {path} failed its sha256 integrity check "
            f"(truncated or corrupted at rest); {_RECOVERY_HINT}"
        )
    return payload


def _validate_checkpoint(path: Path, payload: dict, config: MonteCarloConfig):
    """Check a parsed checkpoint against ``config`` and unpack it.

    Seed/trial mismatches are *configuration* errors, not corruption:
    they raise even when a backup exists, because the backup was
    written for the same sweep.
    """
    if payload.get("seed") != config.seed or payload.get("trials") != config.trials:
        raise CheckpointError(
            f"checkpoint {path} was written for seed={payload.get('seed')}, "
            f"trials={payload.get('trials')}; the current config has "
            f"seed={config.seed}, trials={config.trials}"
        )
    try:
        next_trial = int(payload["next_trial"])
        outcomes = [(int(t), float(v)) for t, v in payload["outcomes"]]
        failures = [
            TrialFailure(trial=int(f["trial"]), error=str(f["error"]))
            for f in payload["failures"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint {path} is malformed: {exc}; {_RECOVERY_HINT}"
        ) from exc
    if not (0 <= next_trial <= config.trials):
        raise CheckpointError(
            f"checkpoint {path} has next_trial={next_trial} outside "
            f"[0, {config.trials}]; {_RECOVERY_HINT}"
        )
    return next_trial, outcomes, failures


def _load_checkpoint(path: Path, config: MonteCarloConfig):
    return _validate_checkpoint(path, _parse_checkpoint(path), config)


def _load_or_recover_checkpoint(path: Path, config: MonteCarloConfig):
    """Load the main checkpoint, healing from the backup if corrupt.

    A corrupt or missing main file falls back to the rotated ``.bak``;
    when that parses, the good payload is republished as the main
    checkpoint (so the next rotation starts from a valid file), a
    :class:`CheckpointRecovered` event is emitted, and the sweep
    resumes from the backup's (older) trial index — bit-identical to an
    uninterrupted run, because the replayed trials re-derive the same
    streams.  A backup that is itself unreadable re-raises the main
    file's original error.
    """
    backup = _backup_path(path)
    try:
        payload = _parse_checkpoint(path)
    except CheckpointError as exc:
        if not backup.exists():
            raise
        try:
            payload = _parse_checkpoint(backup)
        except CheckpointError:
            raise exc from None
        state = _validate_checkpoint(backup, payload, config)
        write_json_atomic(path, payload)
        metrics = active_metrics()
        if metrics is not None:
            metrics.inc("checkpoint_recoveries")
        log = active_event_log()
        if log is not None:
            log.emit(
                CheckpointRecovered(
                    path=str(path),
                    recovered_from=str(backup),
                    next_trial=state[0],
                )
            )
        return state
    return _validate_checkpoint(path, payload, config)


def run_resilient_trials(
    trial_fn: TrialFn,
    config: MonteCarloConfig,
    *,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    checkpoint_every: int = 64,
    resume: bool = False,
    time_budget: Optional[float] = None,
) -> ResilientResult:
    """Run a seeded sweep with fault isolation, checkpoints and budgets.

    Parameters
    ----------
    trial_fn:
        ``(trial_index, rng) -> value``; exceptions it raises are
        recorded per trial, not propagated (``KeyboardInterrupt`` and
        other ``BaseException`` still propagate — after a final
        checkpoint is written, so no completed work is lost).
    config:
        The usual trial budget + master seed.
    checkpoint_dir:
        Directory for the JSON checkpoint (created if missing).  ``None``
        disables checkpointing.
    checkpoint_every:
        Trials between periodic checkpoint writes.
    resume:
        Load ``checkpoint_dir``'s checkpoint and continue from its next
        trial index.  A missing file starts a fresh sweep; an
        incompatible or corrupt file raises :class:`CheckpointError`.
    time_budget:
        Wall-clock seconds; checked before each trial, so the sweep
        stops gracefully between trials and the result is flagged
        ``truncated``.
    """
    if checkpoint_every < 1:
        raise InvalidParameterError(
            f"checkpoint_every must be >= 1, got {checkpoint_every!r}"
        )
    if time_budget is not None and not time_budget > 0.0:
        raise InvalidParameterError(
            f"time_budget must be positive seconds, got {time_budget!r}"
        )
    if resume and checkpoint_dir is None:
        raise InvalidParameterError("resume=True requires a checkpoint_dir")

    path = _checkpoint_path(checkpoint_dir) if checkpoint_dir is not None else None
    chaos = resolve_chaos_policy(None)
    write_index = 0
    outcomes: List[Tuple[int, float]] = []
    failures: List[TrialFailure] = []
    start = 0
    if (
        resume
        and path is not None
        and (path.exists() or _backup_path(path).exists())
    ):
        start, outcomes, failures = _load_or_recover_checkpoint(path, config)
    resumed = len(outcomes) + len(failures)
    resumed_ok = len(outcomes)
    resumed_failed = len(failures)

    def checkpoint(at_trial: int) -> None:
        # Each write carries its ordinal so the chaos corrupt seam can
        # target one specific write deterministically.
        nonlocal write_index
        _write_checkpoint(
            path, config, at_trial, outcomes, failures, chaos, write_index
        )
        write_index += 1

    log = active_event_log()
    if log is not None:
        log.emit(
            RunStarted(
                trials=config.trials,
                seed=config.seed,
                workers=config.resolved_workers(),
                source="runner",
            )
        )
    progress = active_progress()
    if progress is not None:
        # Resumed trials count as already done: the heartbeat position
        # reflects the sweep, not just this process's share of it.
        progress.begin(config.trials)
        progress.advance(resumed, failed=resumed_failed)
    start_wall = time.perf_counter_ns()
    start_cpu = time.process_time_ns()
    truncated = False
    started_at = time.monotonic()
    next_trial = start
    batches = executor_for(config, trial_fn).run(
        trial_fn, config, range(start, config.trials), isolate=True
    )
    try:
        while next_trial < config.trials:
            if (
                time_budget is not None
                and time.monotonic() - started_at >= time_budget
            ):
                truncated = True
                break
            batch = next(batches, None)
            if batch is None:
                break
            for outcome in batch:
                if outcome.ok:
                    outcomes.append((outcome.trial, float(outcome.value)))
                else:
                    failures.append(
                        TrialFailure(trial=outcome.trial, error=outcome.error)
                    )
                next_trial = outcome.trial + 1
                if path is not None and (next_trial - start) % checkpoint_every == 0:
                    checkpoint(next_trial)
    except BaseException:
        # Interrupts and crashes must not lose completed work.
        if path is not None:
            checkpoint(next_trial)
        raise
    finally:
        # Dropping the executor's generator cancels any queued chunks.
        close = getattr(batches, "close", None)
        if close is not None:
            close()
    if path is not None:
        checkpoint(next_trial)
    metrics = active_metrics()
    if metrics is not None:
        metrics.inc("trials_completed", len(outcomes) - resumed_ok)
        metrics.inc("trials_failed", len(failures) - resumed_failed)
    if log is not None:
        log.emit(
            RunFinished(
                completed=len(outcomes),
                failed=len(failures),
                wall_ns=time.perf_counter_ns() - start_wall,
                cpu_ns=time.process_time_ns() - start_cpu,
                source="runner",
            )
        )
    if progress is not None:
        progress.finish()
    return ResilientResult(
        requested=config.trials,
        outcomes=tuple(outcomes),
        failures=tuple(failures),
        truncated=truncated,
        resumed_trials=resumed,
    )


def make_point_probability_trial(
    profile,
    n: int,
    theta: float,
    condition: str,
    scheme=None,
    point=None,
    k: int = 1,
    use_index: bool = True,
) -> TrialFn:
    """The per-trial body of :func:`estimate_point_probability`.

    Exposes the standard estimator through the resilient runner:
    ``run_resilient_trials(make_point_probability_trial(...), config)``
    tallies the same successes as the plain estimator, trial for trial.
    Returns the estimator's own picklable task, so the resilient sweep
    also parallelises (``use_index`` is accepted for API compatibility;
    the batch evaluation path has no use for the spatial index).
    """
    del use_index  # batch evaluation never consults the spatial index
    scheme = scheme or UniformDeployment()
    region = scheme.region
    target = point if point is not None else (0.5 * region.side, 0.5 * region.side)
    return PointProbabilityTask(
        profile=profile,
        n=n,
        theta=theta,
        condition=condition,
        scheme=scheme,
        point=(float(target[0]), float(target[1])),
        k=k,
    )
