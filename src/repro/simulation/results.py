"""Result tables: the tabular output format of every experiment.

A :class:`ResultTable` is a named list of columns plus rows, with
markdown and CSV renderers.  Experiments return tables; benchmarks
print them; EXPERIMENTS.md embeds them.  Keeping the format in one
place guarantees every figure/table of the reproduction renders
consistently.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.errors import InvalidParameterError

__all__ = ["Cell", "ResultTable"]

Cell = Union[str, int, float, bool, None]


def _parse_cell(text: str) -> Cell:
    """Best-effort inverse of CSV cell formatting (see :meth:`load_csv`)."""
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _format_cell(value: Cell, float_format: str) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


@dataclass
class ResultTable:
    """A simple column-ordered table of experiment results.

    Parameters
    ----------
    title:
        Table caption (e.g. ``"Figure 7: CSA vs effective angle"``).
    columns:
        Ordered column names.
    float_format:
        ``format()`` spec applied to float cells when rendering.
    """

    title: str
    columns: Sequence[str]
    rows: List[List[Cell]] = field(default_factory=list)
    float_format: str = ".6g"

    def __post_init__(self) -> None:
        if not self.columns:
            raise InvalidParameterError("a table needs at least one column")
        self.columns = list(self.columns)

    def add_row(self, *values: Cell, **named: Cell) -> None:
        """Append a row given positionally or by column name."""
        if values and named:
            raise InvalidParameterError("pass cells positionally or by name, not both")
        if named:
            unknown = set(named) - set(self.columns)
            if unknown:
                raise InvalidParameterError(f"unknown columns: {sorted(unknown)}")
            row = [named.get(col) for col in self.columns]
        else:
            if len(values) != len(self.columns):
                raise InvalidParameterError(
                    f"expected {len(self.columns)} cells, got {len(values)}"
                )
            row = list(values)
        self.rows.append(row)

    def add_rows(self, rows: Iterable[Sequence[Cell]]) -> None:
        for row in rows:
            self.add_row(*row)

    def column(self, name: str) -> List[Cell]:
        """All values of one column, in row order."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise InvalidParameterError(f"unknown column {name!r}") from None
        return [row[idx] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    # -- rendering -----------------------------------------------------------

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering with the title as a heading."""
        header = "| " + " | ".join(self.columns) + " |"
        divider = "|" + "|".join(" --- " for _ in self.columns) + "|"
        body = [
            "| " + " | ".join(_format_cell(c, self.float_format) for c in row) + " |"
            for row in self.rows
        ]
        return "\n".join([f"### {self.title}", "", header, divider, *body])

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(["" if c is None else c for c in row])
        return buffer.getvalue()

    def to_records(self) -> List[Dict[str, Cell]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def save_csv(self, path: Union[str, Path]) -> Path:
        """Write CSV to ``path`` (parent directories created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_csv())
        return path

    @classmethod
    def load_csv(cls, path: Union[str, Path], title: str = "") -> "ResultTable":
        """Load a table previously written by :meth:`save_csv`.

        CSV carries no type information, so cells are recovered
        heuristically: ints, then floats, empty string to ``None``,
        everything else stays a string.  ``title`` defaults to the file
        stem.  Raises :class:`~repro.errors.InvalidParameterError` for a
        missing or headerless file.
        """
        path = Path(path)
        if not path.is_file():
            raise InvalidParameterError(f"no result file at {path}")
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            try:
                columns = next(reader)
            except StopIteration:
                raise InvalidParameterError(f"{path} is empty") from None
            table = cls(title=title or path.stem, columns=columns)
            for row in reader:
                table.add_row(*[_parse_cell(cell) for cell in row])
        return table

    def pretty(self, max_width: int = 14) -> str:
        """Fixed-width terminal rendering."""
        cells = [[_format_cell(c, self.float_format) for c in row] for row in self.rows]
        widths = [
            min(max_width, max([len(col)] + [len(r[i]) for r in cells] or [0]))
            for i, col in enumerate(self.columns)
        ]
        def fmt_row(row: Sequence[str]) -> str:
            return "  ".join(val[:w].rjust(w) for val, w in zip(row, widths))

        lines = [self.title, fmt_row(list(self.columns)), fmt_row(["-" * w for w in widths])]
        lines.extend(fmt_row(row) for row in cells)
        return "\n".join(lines)
