"""Statistics for Monte-Carlo Bernoulli estimates.

Every simulated probability in this reproduction is a Bernoulli
proportion.  :class:`BernoulliEstimate` bundles the counts with
confidence intervals: the Wilson score interval (good coverage at all
proportions, never leaves ``[0, 1]``) as the default, and the exact
Clopper-Pearson interval for the strictest comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from scipy import stats

from repro.errors import InvalidParameterError

__all__ = [
    "BernoulliEstimate",
    "clopper_pearson_interval",
    "mean_and_half_width",
    "wilson_interval",
]

#: Standard-normal quantile for the default 95% confidence level.
_Z_95 = 1.959963984540054


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise InvalidParameterError(f"trials must be positive, got {trials!r}")
    if not (0 <= successes <= trials):
        raise InvalidParameterError(
            f"successes must be in [0, trials], got {successes}/{trials}"
        )
    if not (0.0 < confidence < 1.0):
        raise InvalidParameterError(f"confidence must be in (0, 1), got {confidence!r}")
    if confidence == 0.95:  # fvlint: disable=FV004 (fast path keyed on the literal default)
        z = _Z_95
    else:
        z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    p = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p + z * z / (2.0 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / trials + z * z / (4.0 * trials * trials))
    # Degenerate proportions pin the matching endpoint exactly, avoiding
    # float rounding that would exclude the MLE.
    lower = 0.0 if successes == 0 else max(0.0, centre - half)
    upper = 1.0 if successes == trials else min(1.0, centre + half)
    return (lower, upper)


def clopper_pearson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Exact (Clopper-Pearson) binomial interval."""
    if trials <= 0:
        raise InvalidParameterError(f"trials must be positive, got {trials!r}")
    if not (0 <= successes <= trials):
        raise InvalidParameterError(
            f"successes must be in [0, trials], got {successes}/{trials}"
        )
    alpha = 1.0 - confidence
    lower = (
        0.0
        if successes == 0
        else float(stats.beta.ppf(alpha / 2.0, successes, trials - successes + 1))
    )
    upper = (
        1.0
        if successes == trials
        else float(stats.beta.ppf(1.0 - alpha / 2.0, successes + 1, trials - successes))
    )
    return (lower, upper)


@dataclass(frozen=True)
class BernoulliEstimate:
    """A simulated probability with its uncertainty.

    Attributes
    ----------
    successes, trials:
        Raw counts.
    """

    successes: int
    trials: int

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise InvalidParameterError(f"trials must be positive, got {self.trials!r}")
        if not (0 <= self.successes <= self.trials):
            raise InvalidParameterError(
                f"successes must be in [0, trials], got {self.successes}/{self.trials}"
            )

    @property
    def proportion(self) -> float:
        return self.successes / self.trials

    def std_error(self) -> float:
        """Plug-in standard error of the proportion."""
        p = self.proportion
        return math.sqrt(p * (1.0 - p) / self.trials)

    def wilson(self, confidence: float = 0.95) -> Tuple[float, float]:
        return wilson_interval(self.successes, self.trials, confidence)

    def clopper_pearson(self, confidence: float = 0.95) -> Tuple[float, float]:
        return clopper_pearson_interval(self.successes, self.trials, confidence)

    def contains(self, theory: float, confidence: float = 0.95, slack: float = 0.0) -> bool:
        """Whether a theoretical value is consistent with this estimate.

        Uses the Wilson interval widened by ``slack`` on both sides
        (absolute probability units).  ``slack`` absorbs known model
        error, e.g. the paper's independence approximation at finite n.
        """
        lower, upper = self.wilson(confidence)
        return lower - slack <= theory <= upper + slack

    def merged(self, other: "BernoulliEstimate") -> "BernoulliEstimate":
        """Pool two independent estimates of the same probability."""
        return BernoulliEstimate(
            successes=self.successes + other.successes,
            trials=self.trials + other.trials,
        )

    def __str__(self) -> str:
        lo, hi = self.wilson()
        return f"{self.proportion:.4f} [{lo:.4f}, {hi:.4f}] ({self.successes}/{self.trials})"


def mean_and_half_width(values, confidence: float = 0.95) -> Tuple[float, float]:
    """Mean and normal-approximation CI half-width of a sample of reals.

    For averaging area fractions across deployments (each fraction is
    itself an average, so normality is a good approximation).
    """
    import numpy as np

    array = np.asarray(values, dtype=float).ravel()
    if array.size == 0:
        raise InvalidParameterError("need at least one value")
    if array.size == 1:
        return float(array[0]), float("inf")
    if confidence == 0.95:  # fvlint: disable=FV004 (fast path keyed on the literal default)
        z = _Z_95
    else:
        z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    mean = float(array.mean())
    sem = float(array.std(ddof=1) / math.sqrt(array.size))
    return mean, z * sem
