"""Seeded Monte-Carlo estimators for coverage probabilities.

Three estimators cover everything the paper's evaluation needs:

- :func:`estimate_point_probability` — the probability that a *fixed
  point* meets a condition (necessary / sufficient / exact full-view /
  k-coverage) over fresh random deployments.  This is the simulated
  counterpart of eq. (2), eq. (13) and Theorems 3-4.
- :func:`estimate_grid_failure_probability` — the probability that
  *some* point of the dense grid fails the condition, the event
  ``not H`` whose CSA-driven phase transition Theorems 1-2 describe.
- :func:`estimate_area_fraction` — the expected fraction of the region
  meeting a condition, the quantity Section V identifies with the
  per-point probability.

All estimators consume a :class:`MonteCarloConfig` carrying the trial
count and master seed; every trial derives its own
:class:`numpy.random.Generator` via ``spawn``, so runs are reproducible
and trials are independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.conditions import (
    necessary_condition_holds,
    sufficient_condition_holds,
)
from repro.core.full_view import is_full_view_covered, validate_effective_angle
from repro.deployment.base import DeploymentScheme
from repro.deployment.uniform import UniformDeployment
from repro.errors import InvalidParameterError
from repro.geometry.grid import DenseGrid
from repro.sensors.fleet import SensorFleet
from repro.sensors.model import HeterogeneousProfile
from repro.simulation.statistics import BernoulliEstimate

__all__ = [
    "DirectionPredicate",
    "MonteCarloConfig",
    "Point",
    "condition_predicate",
    "estimate_area_fraction",
    "estimate_condition_chain",
    "estimate_grid_failure_probability",
    "estimate_point_probability",
]

Point = Tuple[float, float]

#: Predicate over the viewed directions of the covering sensors.
DirectionPredicate = Callable[[np.ndarray], bool]


def condition_predicate(condition: str, theta: float, k: int = 1) -> DirectionPredicate:
    """Build a direction-set predicate for a named condition.

    ``condition`` is one of ``"necessary"``, ``"sufficient"``,
    ``"exact"`` (full-view, gap test) or ``"k_coverage"`` (at least
    ``k`` covering sensors, ignoring directions).
    """
    theta = validate_effective_angle(theta)
    if condition == "necessary":
        return lambda dirs: necessary_condition_holds(dirs, theta)
    if condition == "sufficient":
        return lambda dirs: sufficient_condition_holds(dirs, theta)
    if condition == "exact":
        return lambda dirs: is_full_view_covered(dirs, theta)
    if condition == "k_coverage":
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k!r}")
        return lambda dirs: dirs.size >= k
    raise InvalidParameterError(
        "condition must be one of 'necessary', 'sufficient', 'exact', "
        f"'k_coverage'; got {condition!r}"
    )


@dataclass(frozen=True)
class MonteCarloConfig:
    """Trial budget and reproducibility settings.

    Attributes
    ----------
    trials:
        Number of independent deployments.
    seed:
        Master seed; each trial gets a spawned child generator.
    use_index:
        Whether fleets build a spatial index before queries (identical
        results either way; index pays off from a few hundred sensors).
    """

    trials: int = 200
    seed: int = 0
    use_index: bool = True

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise InvalidParameterError(f"trials must be >= 1, got {self.trials!r}")

    def rng_for_trial(self, trial: int) -> np.random.Generator:
        """The generator for one trial, addressable in O(1).

        Child ``i`` of ``SeedSequence(seed).spawn(trials)`` is exactly
        ``SeedSequence(seed, spawn_key=(i,))``, so trials can be
        (re)played individually — the checkpointed runner resumes a
        sweep at any index with bit-identical streams.
        """
        if not (0 <= trial < self.trials):
            raise InvalidParameterError(
                f"trial must be in [0, {self.trials}), got {trial!r}"
            )
        seq = np.random.SeedSequence(self.seed, spawn_key=(trial,))
        return np.random.Generator(np.random.PCG64(seq))

    def rngs(self) -> Iterator[np.random.Generator]:
        """One independent generator per trial, yielded lazily.

        Streams are identical to the historical eager
        ``SeedSequence(seed).spawn(trials)`` list, but generators are
        created on demand, so large ``--full`` trial counts do not
        materialize thousands of generators up front.
        """
        for trial in range(self.trials):
            yield self.rng_for_trial(trial)

    def rngs_list(self) -> List[np.random.Generator]:
        """Eager shim for callers that need ``len()`` or indexing."""
        return list(self.rngs())


def _deploy(
    scheme: DeploymentScheme,
    profile: HeterogeneousProfile,
    n: int,
    rng: np.random.Generator,
    use_index: bool,
) -> SensorFleet:
    fleet = scheme.deploy(profile, n, rng)
    if use_index and len(fleet) > 0:
        fleet.build_index()
    return fleet


def estimate_point_probability(
    profile: HeterogeneousProfile,
    n: int,
    theta: float,
    condition: str,
    config: MonteCarloConfig,
    scheme: Optional[DeploymentScheme] = None,
    point: Optional[Point] = None,
    k: int = 1,
) -> BernoulliEstimate:
    """P(a fixed point meets ``condition``) over random deployments.

    The default point is the region centre (on the torus every point is
    equivalent, so the choice is immaterial — property-tested).
    """
    scheme = scheme or UniformDeployment()
    region = scheme.region
    target: Point = point if point is not None else (0.5 * region.side, 0.5 * region.side)
    predicate = condition_predicate(condition, theta, k)
    successes = 0
    for rng in config.rngs():
        fleet = _deploy(scheme, profile, n, rng, config.use_index)
        directions = (
            fleet.covering_directions(target, use_index=config.use_index)
            if len(fleet)
            else SensorFleet.no_directions()
        )
        if predicate(directions):
            successes += 1
    return BernoulliEstimate(successes=successes, trials=config.trials)


def estimate_grid_failure_probability(
    profile: HeterogeneousProfile,
    n: int,
    theta: float,
    condition: str,
    config: MonteCarloConfig,
    scheme: Optional[DeploymentScheme] = None,
    grid: Optional[DenseGrid] = None,
    max_grid_points: Optional[int] = None,
) -> BernoulliEstimate:
    """P(some grid point fails ``condition``) — the event ``not H``.

    ``grid`` defaults to the paper's dense grid for ``n`` sensors.
    ``max_grid_points`` subsamples the grid (uniformly, per trial) to
    bound work on large grids; the resulting estimate lower-bounds the
    full-grid failure probability and converges to it as the cap grows.
    """
    from repro.core.batch import condition_mask  # local import avoids a cycle

    scheme = scheme or UniformDeployment()
    grid = grid or DenseGrid.for_sensor_count(n, scheme.region)
    if condition not in ("necessary", "sufficient", "exact"):
        raise InvalidParameterError(
            f"grid conditions are 'necessary', 'sufficient' or 'exact', got {condition!r}"
        )
    failures = 0
    for rng in config.rngs():
        fleet = _deploy(scheme, profile, n, rng, config.use_index)
        if max_grid_points is not None and max_grid_points < len(grid):
            points = grid.sample(max_grid_points, rng)
        else:
            points = grid.points
        trial_failed = False
        if len(fleet) == 0:
            trial_failed = True
        else:
            # Vectorised evaluation with growing chunks: small first
            # chunks keep the early exit cheap in failing regimes,
            # large later chunks amortise vectorisation when the trial
            # is (nearly) fully covered.  Verdict identical to a
            # point-by-point scalar loop.
            start = 0
            chunk = 32
            while start < points.shape[0]:
                mask = condition_mask(
                    fleet, points[start : start + chunk], theta, condition
                )
                if not mask.all():
                    trial_failed = True
                    break
                start += chunk
                chunk = min(4 * chunk, 2048)
        if trial_failed:
            failures += 1
    return BernoulliEstimate(successes=failures, trials=config.trials)


def estimate_area_fraction(
    profile: HeterogeneousProfile,
    n: int,
    theta: float,
    condition: str,
    config: MonteCarloConfig,
    scheme: Optional[DeploymentScheme] = None,
    sample_points: int = 256,
    k: int = 1,
) -> Tuple[float, float]:
    """Expected fraction of the region meeting ``condition``.

    Each trial deploys a fleet and evaluates ``sample_points`` uniform
    random points; fractions are averaged across trials.  Returns
    ``(mean, ci_half_width)`` at 95% confidence.
    """
    from repro.simulation.statistics import mean_and_half_width

    if sample_points < 1:
        raise InvalidParameterError(
            f"sample_points must be >= 1, got {sample_points!r}"
        )
    scheme = scheme or UniformDeployment()
    predicate = condition_predicate(condition, theta, k)
    fractions = []
    for rng in config.rngs():
        fleet = _deploy(scheme, profile, n, rng, config.use_index)
        points = rng.uniform(0.0, scheme.region.side, size=(sample_points, 2))
        hits = 0
        for x, y in points:
            directions = (
                fleet.covering_directions((float(x), float(y)), use_index=config.use_index)
                if len(fleet)
                else SensorFleet.no_directions()
            )
            if predicate(directions):
                hits += 1
        fractions.append(hits / sample_points)
    return mean_and_half_width(fractions)


def estimate_condition_chain(
    profile: HeterogeneousProfile,
    n: int,
    theta: float,
    config: MonteCarloConfig,
    scheme: Optional[DeploymentScheme] = None,
    point: Optional[Point] = None,
) -> dict:
    """Joint per-trial evaluation of necessary / exact / sufficient.

    Evaluates all three conditions on the *same* deployments, returning
    a dict of :class:`BernoulliEstimate` plus the count of sandwich
    violations (which must be zero: sufficient => exact => necessary).
    Used by the GAP experiment (Section VI-C).
    """
    scheme = scheme or UniformDeployment()
    region = scheme.region
    target: Point = point if point is not None else (0.5 * region.side, 0.5 * region.side)
    theta = validate_effective_angle(theta)
    counts = {"necessary": 0, "exact": 0, "sufficient": 0}
    violations = 0
    for rng in config.rngs():
        fleet = _deploy(scheme, profile, n, rng, config.use_index)
        directions = (
            fleet.covering_directions(target, use_index=config.use_index)
            if len(fleet)
            else SensorFleet.no_directions()
        )
        nec = necessary_condition_holds(directions, theta)
        exact = is_full_view_covered(directions, theta)
        suf = sufficient_condition_holds(directions, theta)
        counts["necessary"] += nec
        counts["exact"] += exact
        counts["sufficient"] += suf
        if (suf and not exact) or (exact and not nec):
            violations += 1
    estimates = {
        name: BernoulliEstimate(successes=val, trials=config.trials)
        for name, val in counts.items()
    }
    estimates["sandwich_violations"] = violations
    return estimates
