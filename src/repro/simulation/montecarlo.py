"""Seeded Monte-Carlo estimators for coverage probabilities.

Three estimators cover everything the paper's evaluation needs:

- :func:`estimate_point_probability` — the probability that a *fixed
  point* meets a condition (necessary / sufficient / exact full-view /
  k-coverage) over fresh random deployments.  This is the simulated
  counterpart of eq. (2), eq. (13) and Theorems 3-4.
- :func:`estimate_grid_failure_probability` — the probability that
  *some* point of the dense grid fails the condition, the event
  ``not H`` whose CSA-driven phase transition Theorems 1-2 describe.
- :func:`estimate_area_fraction` — the expected fraction of the region
  meeting a condition, the quantity Section V identifies with the
  per-point probability.

Each estimator is a thin wrapper over a *trial task* — a frozen,
picklable dataclass mapping ``(trial, rng)`` to a small record — run by
the shared engine (:mod:`repro.simulation.engine`).  The engine derives
each trial's generator from the :class:`MonteCarloConfig` master seed,
so runs are reproducible, trials are independent, and serial and
process-parallel execution tally bit-identical estimates.  Point
evaluation inside the tasks goes through the vectorised batch kernels
(:mod:`repro.core.batch`), which are property-tested bit-identical to
the scalar reference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, ClassVar, Optional, Tuple

import numpy as np

from repro.core.batch import condition_mask
from repro.core.conditions import (
    necessary_condition_holds,
    sufficient_condition_holds,
)
from repro.core.kernels import KernelPolicy
from repro.core.full_view import is_full_view_covered
from repro.deployment.base import DeploymentScheme
from repro.deployment.uniform import UniformDeployment
from repro.errors import InvalidParameterError
from repro.geometry.angles import validate_effective_angle
from repro.geometry.grid import DenseGrid
from repro.obs.trace import span
from repro.sensors.fleet import SensorFleet
from repro.sensors.model import HeterogeneousProfile
from repro.simulation.engine import MonteCarloConfig, execute_trials
from repro.simulation.statistics import BernoulliEstimate, mean_and_half_width

__all__ = [
    "AreaFractionTask",
    "ConditionChainTask",
    "DirectionPredicate",
    "EstimatorTask",
    "GridFailureTask",
    "MonteCarloConfig",
    "Point",
    "PointProbabilityTask",
    "condition_predicate",
    "estimate_area_fraction",
    "estimate_condition_chain",
    "estimate_grid_failure_probability",
    "estimate_point_probability",
]

Point = Tuple[float, float]

#: Predicate over the viewed directions of the covering sensors.
DirectionPredicate = Callable[[np.ndarray], bool]

#: Conditions the point-level tasks accept.
_POINT_CONDITIONS = ("necessary", "sufficient", "exact", "k_coverage")

#: Conditions the grid failure estimator accepts (k-coverage of a grid
#: is a different quantity, served by :mod:`repro.core.kcoverage`).
_GRID_CONDITIONS = ("necessary", "sufficient", "exact")


def condition_predicate(condition: str, theta: float, k: int = 1) -> DirectionPredicate:
    """Build a direction-set predicate for a named condition.

    ``condition`` is one of ``"necessary"``, ``"sufficient"``,
    ``"exact"`` (full-view, gap test) or ``"k_coverage"`` (at least
    ``k`` covering sensors, ignoring directions).
    """
    theta = validate_effective_angle(theta)
    if condition == "necessary":
        return lambda dirs: necessary_condition_holds(dirs, theta)
    if condition == "sufficient":
        return lambda dirs: sufficient_condition_holds(dirs, theta)
    if condition == "exact":
        return lambda dirs: is_full_view_covered(dirs, theta)
    if condition == "k_coverage":
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k!r}")
        return lambda dirs: dirs.size >= k
    raise InvalidParameterError(
        "condition must be one of 'necessary', 'sufficient', 'exact', "
        f"'k_coverage'; got {condition!r}"
    )


def _validate_point_condition(condition: str, theta: float, k: int) -> None:
    """Eagerly validate point-task parameters (same errors as the predicate)."""
    validate_effective_angle(theta)
    if condition not in _POINT_CONDITIONS:
        raise InvalidParameterError(
            "condition must be one of 'necessary', 'sufficient', 'exact', "
            f"'k_coverage'; got {condition!r}"
        )
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k!r}")


def _deploy(
    scheme: DeploymentScheme,
    profile: HeterogeneousProfile,
    n: int,
    rng: np.random.Generator,
    use_index: bool,
) -> SensorFleet:
    with span("deploy"):
        fleet = scheme.deploy(profile, n, rng)
        if use_index and len(fleet) > 0:
            fleet.build_index()
    return fleet


@dataclass(frozen=True, kw_only=True)
class EstimatorTask:
    """Shared keyword-only signature of the four estimator trial tasks.

    Every estimator task deploys ``n`` sensors drawn from ``profile``
    via ``scheme`` and evaluates some condition at effective angle
    ``theta``; ``kernel`` is the shared :class:`KernelPolicy` selecting
    the dense or sparse batch evaluation path (a pure performance knob
    — both paths are bit-identical, so estimates never depend on it).
    Subclasses add their own keyword-only fields and stay frozen and
    picklable for the process-pool executor.

    ``releases_gil`` advertises that the tasks spend their time inside
    numpy's batch kernels, which drop the GIL — the signal
    :func:`~repro.simulation.engine.executor_for` uses to pick the
    thread backend under ``executor="auto"``.  A class-level marker,
    not a field: it describes the task *code*, travels with the class,
    and keeps the engine free of any import of this module.
    """

    #: Estimator trials are numpy-kernel bound; ``auto`` may use threads.
    releases_gil: ClassVar[bool] = True

    profile: HeterogeneousProfile
    n: int
    theta: float
    scheme: DeploymentScheme
    kernel: KernelPolicy = KernelPolicy()

    def __post_init__(self) -> None:
        validate_effective_angle(self.theta)


@dataclass(frozen=True, kw_only=True)
class PointProbabilityTask(EstimatorTask):
    """One trial of :func:`estimate_point_probability`.

    Deploys a fresh fleet and reports whether the fixed ``point`` meets
    ``condition``.  Evaluation goes through the batch kernel, which
    never consults the spatial index for a dense evaluation (the sparse
    kernel builds the fleet's index on demand); the verdict is
    identical to the scalar predicate path.  Frozen and picklable,
    so the parallel executor can ship it to worker processes.
    """

    condition: str
    point: Point
    k: int = 1

    def __post_init__(self) -> None:
        _validate_point_condition(self.condition, self.theta, self.k)

    def __call__(self, trial: int, rng: np.random.Generator) -> bool:
        """Deploy and test the fixed point (the trial index is unused)."""
        del trial
        fleet = self.scheme.deploy(self.profile, self.n, rng)
        pts = np.array([self.point], dtype=float)
        return bool(
            condition_mask(
                fleet, pts, self.theta, self.condition, k=self.k,
                kernel=self.kernel.kernel,
            )[0]
        )


@dataclass(frozen=True, kw_only=True)
class GridFailureTask(EstimatorTask):
    """One trial of :func:`estimate_grid_failure_probability`.

    Deploys a fresh fleet and reports whether *some* evaluation point
    fails ``condition`` — the event ``not H``.  The grid is subsampled
    per trial (consuming the trial generator after the deployment, in
    that order, for stream stability) when ``max_grid_points`` caps it.
    """

    condition: str
    grid: DenseGrid
    max_grid_points: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.condition not in _GRID_CONDITIONS:
            raise InvalidParameterError(
                "grid conditions are 'necessary', 'sufficient' or 'exact', "
                f"got {self.condition!r}"
            )

    def __call__(self, trial: int, rng: np.random.Generator) -> bool:
        """Deploy and scan the grid for a failing point."""
        del trial
        fleet = self.scheme.deploy(self.profile, self.n, rng)
        if self.max_grid_points is not None and self.max_grid_points < len(self.grid):
            points = self.grid.sample(self.max_grid_points, rng)
        else:
            points = self.grid.points
        if len(fleet) == 0:
            return True
        # Vectorised evaluation with growing chunks: small first chunks
        # keep the early exit cheap in failing regimes, large later
        # chunks amortise vectorisation when the trial is (nearly)
        # fully covered.  Verdict identical to a point-by-point scalar
        # loop.
        start = 0
        chunk = 32
        while start < points.shape[0]:
            mask = condition_mask(
                fleet,
                points[start : start + chunk],
                self.theta,
                self.condition,
                kernel=self.kernel.kernel,
            )
            if not mask.all():
                return True
            start += chunk
            chunk = min(4 * chunk, 2048)
        return False


@dataclass(frozen=True, kw_only=True)
class AreaFractionTask(EstimatorTask):
    """One trial of :func:`estimate_area_fraction`.

    Deploys a fresh fleet, draws ``sample_points`` uniform points with
    the same trial generator (after the deployment, preserving the
    historical draw order), and returns the fraction meeting
    ``condition`` — evaluated in one vectorised batch instead of a
    scalar per-point loop.
    """

    condition: str
    sample_points: int = 256
    k: int = 1

    def __post_init__(self) -> None:
        _validate_point_condition(self.condition, self.theta, self.k)
        if self.sample_points < 1:
            raise InvalidParameterError(
                f"sample_points must be >= 1, got {self.sample_points!r}"
            )

    def __call__(self, trial: int, rng: np.random.Generator) -> float:
        """Deploy and evaluate one batch of uniform sample points."""
        del trial
        fleet = self.scheme.deploy(self.profile, self.n, rng)
        points = rng.uniform(0.0, self.scheme.region.side, size=(self.sample_points, 2))
        mask = condition_mask(
            fleet, points, self.theta, self.condition, k=self.k,
            kernel=self.kernel.kernel,
        )
        return float(mask.mean())


@dataclass(frozen=True, kw_only=True)
class ConditionChainTask(EstimatorTask):
    """One trial of :func:`estimate_condition_chain`.

    Evaluates necessary / exact / sufficient on the *same* deployment
    and returns the three verdicts as a tuple.  Uses the scalar
    covering-directions path (a single point, three predicates), where
    the spatial index genuinely helps, hence the ``use_index`` knob;
    the shared ``kernel`` policy is accepted for signature uniformity
    but has nothing to dispatch on this scalar path.
    """

    point: Point
    use_index: bool = True

    def __call__(
        self, trial: int, rng: np.random.Generator
    ) -> Tuple[bool, bool, bool]:
        """Deploy once and evaluate all three conditions at the point."""
        del trial
        fleet = _deploy(self.scheme, self.profile, self.n, rng, self.use_index)
        directions = (
            fleet.covering_directions(self.point, use_index=self.use_index)
            if len(fleet)
            else SensorFleet.no_directions()
        )
        return (
            bool(necessary_condition_holds(directions, self.theta)),
            bool(is_full_view_covered(directions, self.theta)),
            bool(sufficient_condition_holds(directions, self.theta)),
        )


def _default_point(scheme: DeploymentScheme, point: Optional[Point]) -> Point:
    """The fixed evaluation point: caller's choice or the region centre."""
    if point is not None:
        return (float(point[0]), float(point[1]))
    side = scheme.region.side
    return (0.5 * side, 0.5 * side)


def estimate_point_probability(
    profile: HeterogeneousProfile,
    n: int,
    theta: float,
    condition: str,
    config: MonteCarloConfig,
    scheme: Optional[DeploymentScheme] = None,
    point: Optional[Point] = None,
    k: int = 1,
    kernel: str = "auto",
) -> BernoulliEstimate:
    """P(a fixed point meets ``condition``) over random deployments.

    The default point is the region centre (on the torus every point is
    equivalent, so the choice is immaterial — property-tested).
    """
    scheme = scheme or UniformDeployment()
    task = PointProbabilityTask(
        profile=profile,
        n=n,
        theta=validate_effective_angle(theta),
        condition=condition,
        scheme=scheme,
        point=_default_point(scheme, point),
        k=k,
        kernel=KernelPolicy(kernel=kernel),
    )
    outcomes = execute_trials(task, config)
    successes = sum(1 for outcome in outcomes if outcome.value)
    return BernoulliEstimate(successes=successes, trials=config.trials)


def estimate_grid_failure_probability(
    profile: HeterogeneousProfile,
    n: int,
    theta: float,
    condition: str,
    config: MonteCarloConfig,
    scheme: Optional[DeploymentScheme] = None,
    grid: Optional[DenseGrid] = None,
    max_grid_points: Optional[int] = None,
    kernel: str = "auto",
) -> BernoulliEstimate:
    """P(some grid point fails ``condition``) — the event ``not H``.

    ``grid`` defaults to the paper's dense grid for ``n`` sensors.
    ``max_grid_points`` subsamples the grid (uniformly, per trial) to
    bound work on large grids; the resulting estimate lower-bounds the
    full-grid failure probability and converges to it as the cap grows.
    """
    scheme = scheme or UniformDeployment()
    task = GridFailureTask(
        profile=profile,
        n=n,
        theta=validate_effective_angle(theta),
        condition=condition,
        scheme=scheme,
        grid=grid or DenseGrid.for_sensor_count(n, scheme.region),
        max_grid_points=max_grid_points,
        kernel=KernelPolicy(kernel=kernel),
    )
    outcomes = execute_trials(task, config)
    failures = sum(1 for outcome in outcomes if outcome.value)
    return BernoulliEstimate(successes=failures, trials=config.trials)


def estimate_area_fraction(
    profile: HeterogeneousProfile,
    n: int,
    theta: float,
    condition: str,
    config: MonteCarloConfig,
    scheme: Optional[DeploymentScheme] = None,
    sample_points: int = 256,
    k: int = 1,
    kernel: str = "auto",
) -> Tuple[float, float]:
    """Expected fraction of the region meeting ``condition``.

    Each trial deploys a fleet and evaluates ``sample_points`` uniform
    random points; fractions are averaged across trials.  Returns
    ``(mean, ci_half_width)`` at 95% confidence.
    """
    scheme = scheme or UniformDeployment()
    task = AreaFractionTask(
        profile=profile,
        n=n,
        theta=validate_effective_angle(theta),
        condition=condition,
        scheme=scheme,
        sample_points=sample_points,
        k=k,
        kernel=KernelPolicy(kernel=kernel),
    )
    outcomes = execute_trials(task, config)
    return mean_and_half_width([outcome.value for outcome in outcomes])


def estimate_condition_chain(
    profile: HeterogeneousProfile,
    n: int,
    theta: float,
    config: MonteCarloConfig,
    scheme: Optional[DeploymentScheme] = None,
    point: Optional[Point] = None,
) -> dict:
    """Joint per-trial evaluation of necessary / exact / sufficient.

    Evaluates all three conditions on the *same* deployments, returning
    a dict of :class:`BernoulliEstimate` plus the count of sandwich
    violations (which must be zero: sufficient => exact => necessary).
    Used by the GAP experiment (Section VI-C).
    """
    scheme = scheme or UniformDeployment()
    task = ConditionChainTask(
        profile=profile,
        n=n,
        theta=validate_effective_angle(theta),
        scheme=scheme,
        point=_default_point(scheme, point),
        use_index=config.use_index,
    )
    outcomes = execute_trials(task, config)
    counts = {"necessary": 0, "exact": 0, "sufficient": 0}
    violations = 0
    for outcome in outcomes:
        nec, exact, suf = outcome.value
        counts["necessary"] += nec
        counts["exact"] += exact
        counts["sufficient"] += suf
        if (suf and not exact) or (exact and not nec):
            violations += 1
    estimates = {
        name: BernoulliEstimate(successes=val, trials=config.trials)
        for name, val in counts.items()
    }
    estimates["sandwich_violations"] = violations
    return estimates
