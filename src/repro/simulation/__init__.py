"""Monte-Carlo simulation harness.

The analytical layer (:mod:`repro.core`) predicts probabilities; this
package measures them on actual random deployments so every theorem in
the paper can be validated by simulation:

- :mod:`repro.simulation.engine` — the trial-execution engine: seeded
  per-trial RNG streams, ``TrialOutcome`` records, and serial /
  thread / process executors that produce bit-identical results.
- :mod:`repro.simulation.payload` — the payload plane: shared-memory
  array segments and content-digest task registration, so process
  workers receive a run's payload bytes once instead of once per chunk.
- :mod:`repro.simulation.statistics` — Bernoulli estimates with Wilson
  and Clopper-Pearson intervals, and agreement tests against theory.
- :mod:`repro.simulation.montecarlo` — seeded trial tasks and runners
  for per-point condition probabilities, grid events and area
  fractions.
- :mod:`repro.simulation.runner` — a resilient sweep executor with
  per-trial fault isolation, checkpoint/resume and wall-clock budgets.
- :mod:`repro.simulation.sweeps` — parameter sweeps over ``n``,
  ``theta`` and the CSA multiple ``q``.
- :mod:`repro.simulation.results` — result tables with CSV/markdown
  rendering (the "figures" of this reproduction).
- :mod:`repro.simulation.workloads` — the intro's motivating scenarios
  as ready-made heterogeneous profiles.
"""

from repro.simulation.engine import (
    MonteCarloConfig,
    ParallelExecutor,
    SerialExecutor,
    ThreadExecutor,
    TrialExecutor,
    TrialOutcome,
    execute_trials,
    executor_for,
    executor_scope,
    run_trial,
)
from repro.simulation.faults import (
    ChaosPolicy,
    RetryPolicy,
    fault_scope,
)
from repro.simulation.payload import (
    ArrayRef,
    PayloadStore,
    TaskRef,
    resolve_task,
)
from repro.simulation.montecarlo import (
    estimate_area_fraction,
    estimate_grid_failure_probability,
    estimate_point_probability,
)
from repro.simulation.results import ResultTable
from repro.simulation.runner import (
    ResilientResult,
    TrialFailure,
    make_point_probability_trial,
    run_resilient_trials,
)
from repro.simulation.statistics import BernoulliEstimate, wilson_interval

__all__ = [
    "ArrayRef",
    "BernoulliEstimate",
    "ChaosPolicy",
    "MonteCarloConfig",
    "ParallelExecutor",
    "PayloadStore",
    "ResilientResult",
    "ResultTable",
    "RetryPolicy",
    "SerialExecutor",
    "TaskRef",
    "ThreadExecutor",
    "TrialExecutor",
    "TrialFailure",
    "TrialOutcome",
    "execute_trials",
    "executor_for",
    "executor_scope",
    "fault_scope",
    "resolve_task",
    "make_point_probability_trial",
    "run_resilient_trials",
    "run_trial",
    "estimate_area_fraction",
    "estimate_grid_failure_probability",
    "estimate_point_probability",
    "wilson_interval",
]
