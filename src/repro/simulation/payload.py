"""The payload plane: shared-memory array segments and task registration.

The process-pool executor used to re-pickle the full task dataclass —
grid arrays, fleet profiles, kernel policy — into every dispatched
chunk, so payload bytes crossed the process boundary once *per chunk*.
This module makes them cross once *per run*:

- :class:`PayloadStore` — a run-scoped owner of
  ``multiprocessing.shared_memory`` segments.  Large ndarrays inside a
  task are externalised into content-addressed segments and replaced by
  lightweight :class:`ArrayRef` handles; the task's remaining pickle
  body goes into one more segment keyed by its content digest, yielding
  a tiny :class:`TaskRef` that is all a chunk submission has to carry.
- :func:`resolve_task` — the worker-side half.  A worker receiving a
  :class:`TaskRef` attaches the named segments lazily, verifies the
  body digest, rebuilds the task with zero-copy read-only array views,
  and caches it per process, so every later chunk of the run costs a
  dictionary lookup.  Named segments persist across pool respawns, so
  the faults ladder re-attaches for free — a freshly spawned worker
  resolves the same handles the dead one held.

Lifecycle is the part that must not be optional: every segment a store
creates is unlinked when the owning run finishes (``close()``), when
the store is garbage collected, or — the crash net — by an ``atexit``
hook covering stores abandoned by an exception.  Workers never unlink:
pool workers share the parent's resource-tracker process, so their
attachments piggyback on the parent's create-time registration (see
:func:`_attach`), and each worker keeps a small LRU of resolved tasks
so long-lived warm pools do not accumulate maps of dead segments.

The interception point is pickling itself (``persistent_id`` /
``persistent_load``), so tasks stay plain frozen dataclasses: they do
not know about segments, FV006 pickle-safety is untouched, and a task
that cannot pickle fails registration exactly the way it fails chunk
submission — the engine's serialization fallback applies unchanged.

The module-level worker caches (``_ATTACHED``, ``_LOCAL_SEGMENTS``,
``_TASK_CACHE``, ``_TASK_SEGMENTS``) are the audited exception to
fvlint's worker-state hygiene rule (FV007): they are append-only maps
of immutable handles, keyed by globally-unique segment names, and never
influence a trial value — see ``AUDITED_WORKER_GLOBALS`` in
:mod:`repro.lint.rules.parallel`.
"""

from __future__ import annotations

import atexit
import hashlib
import io
import itertools
import os
import pickle
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.errors import PayloadError

__all__ = [
    "MIN_SHARED_BYTES",
    "ArrayRef",
    "PayloadStore",
    "SEGMENT_PREFIX",
    "TaskRef",
    "prime_worker",
    "resolve_task",
]

#: Arrays smaller than this stay inline in the task's pickle body; a
#: segment per tiny array would cost more in attach round-trips than it
#: saves in bytes.
MIN_SHARED_BYTES = 2048

#: Prefix of every segment name this module creates; tests scan for it
#: when asserting that runs leak nothing.
SEGMENT_PREFIX = "fvp"

#: Resolved tasks cached per worker process.  Small and bounded: a warm
#: pool outlives many runs, and each run's segments die with its store,
#: so unbounded caching would pin maps of unlinked segments forever.
_TASK_CACHE_LIMIT = 4

_STORE_IDS = itertools.count()


@dataclass(frozen=True)
class ArrayRef:
    """A picklable handle to an ndarray living in a shared segment.

    ``resolve()`` maps the segment and returns a zero-copy, read-only
    view; the handle itself is a few dozen bytes however large the
    array is.
    """

    segment: str
    shape: Tuple[int, ...]
    dtype: str
    nbytes: int

    def resolve(self) -> np.ndarray:
        """Attach the segment and view it as a read-only ndarray."""
        shm = _attach(self.segment)
        array = np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=shm.buf)
        array.flags.writeable = False
        return array


@dataclass(frozen=True)
class TaskRef:
    """A content-digest handle to a registered task.

    The task's pickle body (arrays already externalised as
    :class:`ArrayRef`) lives in ``segment``; ``digest`` keys the
    worker-side cache and doubles as an integrity check on the bytes
    read back.
    """

    segment: str
    nbytes: int
    digest: str


class _PayloadPickler(pickle.Pickler):
    """Pickler that externalises large ndarrays into a store's segments."""

    def __init__(self, store: "PayloadStore", file: io.BytesIO) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._store = store

    def persistent_id(self, obj: Any) -> Optional[ArrayRef]:
        if (
            type(obj) is np.ndarray
            and obj.nbytes >= self._store.min_bytes
            and not obj.dtype.hasobject
        ):
            return self._store.share_array(obj)
        return None


class _PayloadUnpickler(pickle.Unpickler):
    """Unpickler resolving :class:`ArrayRef` ids into shared views."""

    def __init__(self, file: io.BytesIO) -> None:
        super().__init__(file)
        self.resolved_segments: List[str] = []

    def persistent_load(self, pid: Any) -> Any:
        if isinstance(pid, ArrayRef):
            self.resolved_segments.append(pid.segment)
            return pid.resolve()
        raise PayloadError(f"unknown persistent id {pid!r}")


#: Live stores awaiting cleanup; weak so a collected store (whose
#: ``__del__`` already unlinked) never pins itself here.
_LIVE_STORES: "weakref.WeakSet[PayloadStore]" = weakref.WeakSet()


def _cleanup_live_stores() -> None:
    """The atexit crash net: unlink segments of stores never closed."""
    for store in list(_LIVE_STORES):
        store.close()


atexit.register(_cleanup_live_stores)


class PayloadStore:
    """Run-scoped owner of shared-memory payload segments.

    One store backs one executor run: ``register_task`` externalises a
    task once, the run ships the resulting :class:`TaskRef` with every
    chunk, and ``close()`` (or the atexit net, or garbage collection)
    unlinks everything.  Segment names embed the pid and a store nonce,
    so concurrent runs — even of identical tasks — never collide.
    """

    def __init__(self, min_bytes: int = MIN_SHARED_BYTES) -> None:
        self.min_bytes = min_bytes
        self._token = f"{os.getpid():x}-{next(_STORE_IDS):x}"
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._array_refs: Dict[str, ArrayRef] = {}
        self._task_refs: Dict[str, TaskRef] = {}
        self._closed = False
        _LIVE_STORES.add(self)

    @property
    def closed(self) -> bool:
        """Whether the store's segments have been unlinked."""
        return self._closed

    @property
    def payload_bytes(self) -> int:
        """Total bytes placed into shared segments by this store."""
        return sum(shm.size for shm in self._segments.values())

    def segment_names(self) -> Tuple[str, ...]:
        """The names of every live segment this store owns."""
        return tuple(self._segments)

    def _new_segment(self, tag: str, size: int) -> shared_memory.SharedMemory:
        if self._closed:
            raise PayloadError("payload store is closed")
        name = f"{SEGMENT_PREFIX}{self._token}-{tag}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(1, size))
        self._segments[name] = shm
        # Export locally so the in-process fallback path resolves refs
        # against the owner's mapping instead of re-attaching (a second
        # attachment in the creating process would also re-register the
        # name with the resource tracker).
        _LOCAL_SEGMENTS[name] = shm
        return shm

    def share_array(self, array: np.ndarray) -> ArrayRef:
        """Place one ndarray into a segment, content-deduplicated.

        The same bytes shared twice (the same grid appearing in two
        tasks, say) reuse one segment.  The returned handle resolves to
        a read-only view, which is what makes cross-process sharing
        sound: trial code treats task payloads as immutable inputs.
        """
        array = np.ascontiguousarray(array)
        if array.dtype.hasobject:
            raise PayloadError("object-dtype arrays cannot be shared")
        fingerprint = hashlib.sha256()
        fingerprint.update(array.dtype.str.encode("ascii"))
        fingerprint.update(repr(array.shape).encode("ascii"))
        fingerprint.update(array.data)
        key = fingerprint.hexdigest()[:16]
        ref = self._array_refs.get(key)
        if ref is not None:
            return ref
        shm = self._new_segment(f"a{key}", array.nbytes)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        ref = ArrayRef(
            segment=shm.name,
            shape=tuple(array.shape),
            dtype=array.dtype.str,
            nbytes=array.nbytes,
        )
        self._array_refs[key] = ref
        return ref

    def register_task(self, task: Any) -> TaskRef:
        """Externalise one task: arrays into segments, body into one more.

        Registration *is* pickling, so anything that cannot cross the
        process boundary (a lambda, a lock) fails here with the same
        error it would fail chunk submission with — callers fall back
        to inline shipping exactly as before.  Identical tasks (same
        pickle bytes) registered twice return the same handle.
        """
        buffer = io.BytesIO()
        _PayloadPickler(self, buffer).dump(task)
        body = buffer.getvalue()
        digest = hashlib.sha256(body).hexdigest()[:16]
        ref = self._task_refs.get(digest)
        if ref is not None:
            return ref
        shm = self._new_segment(f"t{digest}", len(body))
        shm.buf[: len(body)] = body
        ref = TaskRef(segment=shm.name, nbytes=len(body), digest=digest)
        self._task_refs[digest] = ref
        return ref

    def close(self) -> None:
        """Unlink every segment (idempotent).

        Locally cached resolutions of this store's tasks are evicted
        first so their array views release the mappings; a view still
        held elsewhere only delays the munmap (the kernel frees the
        pages when the last map dies), never the unlink — ``/dev/shm``
        is clean the moment this returns.
        """
        if self._closed:
            return
        self._closed = True
        _LIVE_STORES.discard(self)
        for digest in self._task_refs:
            _evict_task(digest)
        for name, shm in self._segments.items():
            _LOCAL_SEGMENTS.pop(name, None)
            try:
                shm.close()
            except BufferError:  # a live view still exports the buffer
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()
        self._array_refs.clear()
        self._task_refs.clear()

    def __enter__(self) -> "PayloadStore":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass


# --- worker-side attachment and resolution -------------------------------
#
# These four module-level maps are the audited worker-side payload
# cache (fvlint FV007 allowlist): they hold immutable handles keyed by
# globally-unique segment names / content digests, they are only ever
# *added to* on the worker side, and nothing read from them depends on
# insertion order, so they cannot leak state between trials.

#: Segments this process attached to (worker side of the plane).
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}

#: Segments this process *created*; the in-process fallback resolves
#: against these directly instead of re-attaching.
_LOCAL_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}

#: Resolved tasks, LRU-bounded per process (see :data:`_TASK_CACHE_LIMIT`).
_TASK_CACHE: "OrderedDict[str, Any]" = OrderedDict()

#: Which segments each cached task's views live in, for eviction.
_TASK_SEGMENTS: Dict[str, FrozenSet[str]] = {}


def _attach(name: str) -> shared_memory.SharedMemory:
    """Map a named segment, preferring a locally-owned mapping.

    On this Python, *attaching* registers the name with the resource
    tracker too — but pool workers (forkserver/spawn) share the
    parent's tracker process, so the worker-side registration is a
    set no-op against the parent's create-time entry and the single
    balanced unregister happens when the owning store unlinks.  The
    tracker therefore stays what it should be: the crash net that
    reaps segments of a parent that died without closing its store.
    """
    shm = _ATTACHED.get(name)
    if shm is not None:
        return shm
    local = _LOCAL_SEGMENTS.get(name)
    if local is not None:
        return local
    shm = shared_memory.SharedMemory(name=name)
    _ATTACHED[name] = shm
    return shm


def _evict_task(digest: str) -> None:
    """Drop one cached task and close attachments it alone was using."""
    _TASK_CACHE.pop(digest, None)
    segments = _TASK_SEGMENTS.pop(digest, frozenset())
    still_needed = frozenset().union(*_TASK_SEGMENTS.values()) if _TASK_SEGMENTS else frozenset()
    for name in segments:
        if name in still_needed:
            continue
        shm = _ATTACHED.pop(name, None)
        if shm is None:
            continue
        try:
            shm.close()
        except BufferError:
            # A view outlived its task (caller still holds one): keep
            # the mapping; the process exit reclaims it.
            _ATTACHED[name] = shm


def resolve_task(ref: TaskRef) -> Any:
    """Rebuild (or fetch from cache) the task behind a handle.

    The first resolution per process attaches the body segment, checks
    the bytes against the handle's content digest, and unpickles with
    array handles resolving to zero-copy shared views; later chunks of
    the run hit the cache.  Raises :class:`~repro.errors.PayloadError`
    when the segment bytes do not match the digest.
    """
    task = _TASK_CACHE.get(ref.digest)
    if task is not None:
        _TASK_CACHE.move_to_end(ref.digest)
        return task
    shm = _attach(ref.segment)
    body = bytes(shm.buf[: ref.nbytes])
    if hashlib.sha256(body).hexdigest()[:16] != ref.digest:
        raise PayloadError(
            f"payload segment {ref.segment!r} does not match digest "
            f"{ref.digest!r}; refusing to run a corrupt task"
        )
    unpickler = _PayloadUnpickler(io.BytesIO(body))
    task = unpickler.load()
    _TASK_CACHE[ref.digest] = task
    _TASK_SEGMENTS[ref.digest] = frozenset(unpickler.resolved_segments) | {ref.segment}
    while len(_TASK_CACHE) > _TASK_CACHE_LIMIT:
        _evict_task(next(iter(_TASK_CACHE)))
    return task


def prime_worker(refs: Tuple[TaskRef, ...] = ()) -> None:
    """Pool initializer: pre-resolve a run's tasks in a fresh worker.

    Purely an optimisation — lazy resolution in :func:`resolve_task`
    is what guarantees correctness — so this must never raise: a
    worker spawned late (or after the run ended) would otherwise break
    its whole pool over a segment that no longer exists.
    """
    for ref in refs:
        try:
            resolve_task(ref)
        except Exception:
            pass
