"""Module entry point: ``python -m repro`` == the ``fullview`` CLI."""

import sys

from repro.cli import main

sys.exit(main())
