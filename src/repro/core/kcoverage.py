"""Classic 1-/k-coverage machinery for the Section VII comparisons.

Three reference results are implemented:

- The 1-coverage critical sensing area ``(log n + log log n)/n``
  (eq. (19)), equivalently Wang et al.'s critical effective sensing
  radius ``R*(n) = sqrt((log n + log log n)/(pi n))`` for disk sensors —
  the paper shows its necessary CSA degenerates to exactly this at
  ``theta = pi``.
- Kumar et al.'s sufficient per-sensor area for asymptotic
  ``k``-coverage, ``s_K(n) = (log n + k log log n + u(n))/n``
  (eq. (21)); the paper proves ``s_N,c(n) >= s_K(n)`` for
  ``k = ceil(pi/theta)``, i.e. full-view coverage demands strictly more
  than the k-coverage it implies.
- Simulation-side k-coverage checks against a deployed fleet.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.full_view import validate_effective_angle
from repro.errors import InvalidParameterError
from repro.sensors.fleet import SensorFleet

__all__ = [
    "Point",
    "critical_esr",
    "full_view_vs_k_coverage_margin",
    "implied_k",
    "is_k_covered",
    "k_coverage_fraction",
    "kumar_sufficient_area",
    "one_coverage_csa",
    "wang_cao_lattice_edge",
]

Point = tuple


def one_coverage_csa(n: int) -> float:
    """Critical sensing area for 1-coverage: ``(log n + log log n)/n``.

    Valid for ``n >= 3`` (needs ``log log n`` defined and positive).
    """
    if n < 3:
        raise InvalidParameterError(f"need n >= 3, got {n!r}")
    return (math.log(n) + math.log(math.log(n))) / n


def critical_esr(n: int) -> float:
    """Wang et al.'s critical effective sensing radius for disk sensors.

    ``R*(n) = sqrt((log n + log log n) / (pi n))`` — converting the
    disk of this radius to a sensing area gives exactly
    :func:`one_coverage_csa`.
    """
    return math.sqrt(one_coverage_csa(n) / math.pi)


def implied_k(theta: float) -> int:
    """The coverage multiplicity full-view coverage implies: ``ceil(pi/theta)``.

    Full-view coverage with effective angle ``theta`` requires at least
    this many covering sensors per point (Section VII-B), hence implies
    ``k``-coverage with this ``k``.
    """
    theta = validate_effective_angle(theta)
    return math.ceil(math.pi / theta - 1e-12)


def kumar_sufficient_area(n: int, k: int, u_n: float = 0.0) -> float:
    """Kumar et al.'s sufficient sensing area for asymptotic k-coverage.

    ``s_K(n) = (log n + k log log n + u(n)) / n`` (eq. (21)), with
    ``u(n) = o(log log n)`` a slack term (0 by default, giving the
    order-level threshold used in the paper's comparison).
    """
    if n < 3:
        raise InvalidParameterError(f"need n >= 3, got {n!r}")
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k!r}")
    return (math.log(n) + k * math.log(math.log(n)) + u_n) / n


def full_view_vs_k_coverage_margin(n: int, theta: float) -> float:
    """``s_N,c(n) - s_K(n)`` at ``k = implied_k(theta)``.

    Section VII-B argues this margin is non-negative: the *necessary*
    condition of full-view coverage is more demanding than the
    *sufficient* condition of the k-coverage it implies.

    Reproduction note: the paper's derivation replaces the exact CSA
    coefficient ``pi/theta`` by ``k = ceil(pi/theta)``.  When
    ``pi/theta`` is an integer the two coincide and the margin is
    provably non-negative for every ``n`` (that is
    ``k log n >= log n``); for non-integer ratios (e.g. ``theta`` just
    below ``pi``) the exact margin can be *slightly* negative because
    ``pi/theta < k`` — the inequality then holds only in the paper's
    rounded form.  The KCOV experiment evaluates the grid
    ``theta = pi/k`` where the claim is exact.
    """
    from repro.core.csa import csa_necessary  # local import avoids a cycle

    return csa_necessary(n, theta) - kumar_sufficient_area(n, implied_k(theta))


def is_k_covered(fleet: SensorFleet, point: Point, k: int) -> bool:
    """Whether at least ``k`` sensors cover ``point``."""
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k!r}")
    return fleet.coverage_count(point) >= k


def k_coverage_fraction(
    fleet: SensorFleet, points: np.ndarray, k: int, use_index: bool = True
) -> float:
    """Fraction of ``points`` covered by at least ``k`` sensors."""
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k!r}")
    pts = np.asarray(points, dtype=float).reshape(-1, 2)
    if pts.shape[0] == 0:
        raise InvalidParameterError("need at least one evaluation point")
    if use_index and fleet.index is None and len(fleet) > 0:
        fleet.build_index()
    hits = sum(
        1
        for x, y in pts
        if fleet.coverage_count((float(x), float(y)), use_index=use_index) >= k
    )
    return hits / pts.shape[0]


def wang_cao_lattice_edge(
    delta_r: float, delta_phi_min: float, delta_theta: float
) -> float:
    """Wang & Cao's lattice edge bound (their Lemma 4.5, Section VII-C).

    The triangular-lattice discretisation of [4] requires edge length
    ``l <= min(2*delta_r, delta_phi_min) / (sqrt(3) * cot(delta_theta))``
    so that full-view coverage of the lattice points with parameters
    ``(r, phi, theta)`` extends to the whole region with
    ``(r + delta_r, phi + delta_phi, theta + delta_theta)``.

    Note: the source text of this formula is OCR-degraded; this
    implementation follows the quoted form literally and is used only
    for the qualitative Section VII-C comparison (our square-grid
    discretisation does not depend on it).
    """
    if delta_r <= 0 or delta_phi_min <= 0:
        raise InvalidParameterError("delta_r and delta_phi_min must be positive")
    if not (0.0 < delta_theta < 0.5 * math.pi):
        raise InvalidParameterError(
            f"delta_theta must be in (0, pi/2), got {delta_theta!r}"
        )
    cot = math.cos(delta_theta) / math.sin(delta_theta)
    return min(2.0 * delta_r, delta_phi_min) / (math.sqrt(3.0) * cot)
