"""Per-point probabilities under uniform deployment (Section III/IV).

For a point ``P`` and one sensor of group ``G_y`` placed uniformly at
random with uniform random orientation, the probability that it lands
in a given sector ``T_j`` of the Fig. 4 partition *and* covers ``P``
factorises (Section III-A) as::

    P(in T_j) * P(covers P | in T_j)
        = (2*theta/(2*pi)) * pi * r_y**2   *   phi_y/(2*pi)
        = theta * s_y / pi                       (necessary; sector 2*theta)

and ``theta * s_y / (2*pi)`` for the sufficient partition's
``theta``-sectors.  Note only the *area* ``s_y = phi_y r_y^2/2`` enters
— the Section VI-A "decisive role of sensing area".

With ``n_y = c_y n`` sensors per group and sector occupancies treated
as independent (exact asymptotically; see the inclusion-exclusion
ablation below), the failure events are

- eq. (2):  ``P(F_N,P) = 1 - [1 - prod_y (1 - theta s_y/pi )^{n_y}]^{K_N}``
- eq. (13): ``P(F_S,P) = 1 - [1 - prod_y (1 - theta s_y/(2*pi))^{n_y}]^{K_S}``

and the Bonferroni grid bounds (eqs. (3)-(4), (14)-(15)) sandwich the
probability that the dense grid fails the condition anywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.special import comb

from repro.core.conditions import sector_count_necessary, sector_count_sufficient
from repro.core.full_view import validate_effective_angle
from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI
from repro.geometry.grid import grid_points_required
from repro.sensors.model import HeterogeneousProfile

__all__ = [
    "GridFailureBounds",
    "coverage_probability_single_point",
    "expected_covering_sensors",
    "grid_failure_bounds",
    "necessary_failure_probability",
    "necessary_failure_probability_exact",
    "per_sensor_sector_probability",
    "point_failure_probability",
    "sufficient_failure_probability",
]


def per_sensor_sector_probability(
    sensing_area: float, theta: float, condition: str
) -> float:
    """Probability one uniform sensor lands in a given sector and covers ``P``.

    ``theta * s / pi`` for the necessary partition (sector angle
    ``2*theta``), ``theta * s / (2*pi)`` for the sufficient partition
    (sector angle ``theta``).
    """
    theta = validate_effective_angle(theta)
    if sensing_area <= 0:
        raise InvalidParameterError(f"sensing area must be positive, got {sensing_area!r}")
    if condition == "necessary":
        p = theta * sensing_area / math.pi
    elif condition == "sufficient":
        p = theta * sensing_area / TWO_PI
    else:
        raise InvalidParameterError(
            f"condition must be 'necessary' or 'sufficient', got {condition!r}"
        )
    if p > 1.0:
        # Physically the sensing region saturates the sector; cap.
        p = 1.0
    return p


def _sector_vacancy_probability(
    profile: HeterogeneousProfile, n: int, theta: float, condition: str
) -> float:
    """``prod_y (1 - p_y)^{n_y}``: no sensor in a given sector covers ``P``.

    Uses exact integer group counts ``n_y`` (largest remainder), the
    same counts the simulator deploys, so theory and simulation are
    compared on identical populations.
    """
    if n < 1:
        raise InvalidParameterError(f"sensor count must be >= 1, got {n!r}")
    counts = profile.group_counts(n)
    log_vacancy = 0.0
    for group, n_y in zip(profile.groups, counts):
        if n_y == 0:
            continue
        p = per_sensor_sector_probability(group.sensing_area, theta, condition)
        if p >= 1.0:
            return 0.0
        log_vacancy += n_y * math.log1p(-p)
    return math.exp(log_vacancy)


def _failure_from_vacancy(vacancy: float, sectors: int) -> float:
    """``1 - (1 - v)^K`` computed stably, handling the v -> 1 corner."""
    if vacancy >= 1.0:
        return 1.0
    return -math.expm1(sectors * math.log1p(-vacancy))


def necessary_failure_probability(
    profile: HeterogeneousProfile, n: int, theta: float
) -> float:
    """Eq. (2): probability a point fails the necessary condition."""
    theta = validate_effective_angle(theta)
    vacancy = _sector_vacancy_probability(profile, n, theta, "necessary")
    return _failure_from_vacancy(vacancy, sector_count_necessary(theta))


def sufficient_failure_probability(
    profile: HeterogeneousProfile, n: int, theta: float
) -> float:
    """Eq. (13): probability a point fails the sufficient condition."""
    theta = validate_effective_angle(theta)
    vacancy = _sector_vacancy_probability(profile, n, theta, "sufficient")
    return _failure_from_vacancy(vacancy, sector_count_sufficient(theta))


def point_failure_probability(
    profile: HeterogeneousProfile, n: int, theta: float, condition: str
) -> float:
    """Dispatch to eq. (2) or eq. (13) by condition name."""
    if condition == "necessary":
        return necessary_failure_probability(profile, n, theta)
    if condition == "sufficient":
        return sufficient_failure_probability(profile, n, theta)
    raise InvalidParameterError(
        f"condition must be 'necessary' or 'sufficient', got {condition!r}"
    )


@dataclass(frozen=True)
class GridFailureBounds:
    """Bonferroni sandwich on the grid-level failure probability.

    ``P(not H) <= upper`` (eq. (3)/(14): union bound) and
    ``P(not H) >= lower`` (eq. (4)/(15): second Bonferroni term with the
    paper's asymptotic-independence approximation
    ``P(F_i and F_j) = P(F)^2``).  ``lower`` is clamped at 0.
    """

    lower: float
    upper: float
    grid_points: int
    point_failure: float


def grid_failure_bounds(
    profile: HeterogeneousProfile,
    n: int,
    theta: float,
    condition: str = "necessary",
    grid_points: int | None = None,
) -> GridFailureBounds:
    """Bounds on P(some grid point fails the condition).

    ``grid_points`` defaults to the paper's ``m = ceil(n log n)``.
    """
    p_fail = point_failure_probability(profile, n, theta, condition)
    m = grid_points_required(n) if grid_points is None else int(grid_points)
    if m < 1:
        raise InvalidParameterError(f"grid_points must be >= 1, got {m!r}")
    upper = min(1.0, m * p_fail)
    lower = max(0.0, m * p_fail - (m * p_fail) ** 2)
    return GridFailureBounds(
        lower=lower, upper=upper, grid_points=m, point_failure=p_fail
    )


def necessary_failure_probability_exact(
    profile: HeterogeneousProfile, n: int, theta: float
) -> float:
    """Inclusion-exclusion version of eq. (2) without the independence step.

    The paper treats the occupancies of different sectors as independent
    ("this impact is negligible as n -> infinity").  When the sector
    angle divides ``2*pi`` exactly (no overlapping patch sector) the
    sectors are disjoint, the per-sensor events "lands in sector j and
    covers P" are mutually exclusive across ``j``, and inclusion-
    exclusion is exact::

        P(some sector vacant) =
            sum_{j=1}^{K} (-1)^{j+1} C(K, j) prod_y (1 - j p_y)^{n_y}

    For non-dividing angles the patch sector overlaps its neighbours and
    this formula is itself an approximation (a tight one; the overlap
    involves only one sector).  This ablation quantifies the error of
    the paper's independence assumption — see
    ``benchmarks/bench_uniform_necessary_mc.py``.
    """
    theta = validate_effective_angle(theta)
    sectors = sector_count_necessary(theta)
    counts = profile.group_counts(n)
    probs = [
        per_sensor_sector_probability(g.sensing_area, theta, "necessary")
        for g in profile.groups
    ]
    total = 0.0
    for j in range(1, sectors + 1):
        log_term = 0.0
        degenerate = False
        for p, n_y in zip(probs, counts):
            if n_y == 0:
                continue
            q = 1.0 - j * p
            if q <= 0.0:
                degenerate = True
                break
            log_term += n_y * math.log(q)
        term = 0.0 if degenerate else math.exp(log_term)
        total += (-1.0) ** (j + 1) * comb(sectors, j, exact=True) * term
    return min(1.0, max(0.0, total))


def expected_covering_sensors(
    profile: HeterogeneousProfile, n: int
) -> float:
    """Expected number of sensors covering a fixed point.

    Each group-``y`` sensor covers ``P`` with probability ``s_y`` (its
    sensing area; Section VI-A), so the expectation is
    ``sum_y n_y s_y ~= n * s_c``.
    """
    counts = profile.group_counts(n)
    return float(
        sum(n_y * g.sensing_area for g, n_y in zip(profile.groups, counts))
    )


def coverage_probability_single_point(
    profile: HeterogeneousProfile, n: int
) -> float:
    """Probability a fixed point is covered by at least one sensor (1-coverage)."""
    counts = profile.group_counts(n)
    log_miss = 0.0
    for group, n_y in zip(profile.groups, counts):
        if n_y == 0:
            continue
        s = min(1.0, group.sensing_area)
        if s >= 1.0:
            return 1.0
        log_miss += n_y * math.log1p(-s)
    return -math.expm1(log_miss)
