"""Kernel dispatch policy: dense vs sparse coverage evaluation.

The batch kernels in :mod:`repro.core.batch` come in two bit-identical
flavours: the *dense* path materialises the full ``(points, sensors)``
covering matrix, while the *sparse* path evaluates only candidate pairs
pruned through :meth:`ToroidalCellIndex.query_radius_batch`.  Which one
wins depends on candidate density: in the paper's regime
(``r ~ sqrt(log n / n)``) each point sees only ``O(log n)`` sensors and
sparse is an order of magnitude cheaper, but for small fleets or radii
comparable to the region the dense path's simpler memory traffic wins.

Every public kernel takes ``kernel="auto" | "dense" | "sparse"`` and
routes through :func:`resolve_kernel`, so estimator tasks, the engine
and the grid experiments all inherit the choice without per-call
plumbing.  Resolution order: an explicit ``"dense"``/``"sparse"``
argument wins, then the ``FULLVIEW_KERNEL`` environment variable, then
the density heuristic.  :class:`KernelPolicy` is the picklable carrier
task dataclasses embed so the choice survives the process-pool boundary.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

from repro.errors import InvalidParameterError
from repro.sensors.fleet import SensorFleet

__all__ = [
    "KERNEL_CHOICES",
    "KERNEL_ENV_VAR",
    "KernelPolicy",
    "resolve_kernel",
]

#: The accepted values for every ``kernel=`` argument.
KERNEL_CHOICES = ("auto", "dense", "sparse")

#: Environment override consulted by ``kernel="auto"`` — lets CI force
#: the sparse path across a whole run without touching call sites.
KERNEL_ENV_VAR = "FULLVIEW_KERNEL"

#: Below this many (point, sensor) pairs the dense path is always used:
#: candidate pruning cannot beat one small broadcast block.
_SPARSE_MIN_PAIRS = 16_384

#: Auto picks sparse only while a sensing disk covers at most this
#: fraction of the region — above it most pairs are candidates anyway
#: and the CSR bookkeeping is pure overhead.
_SPARSE_DENSITY_CUTOFF = 0.25


def _validate_kernel(kernel: str) -> str:
    if kernel not in KERNEL_CHOICES:
        raise InvalidParameterError(
            f"kernel must be one of {KERNEL_CHOICES}, got {kernel!r}"
        )
    return kernel


@dataclass(frozen=True)
class KernelPolicy:
    """Picklable kernel preference embedded in estimator tasks.

    ``kernel`` holds the requested evaluation path (``"auto"`` defers
    the choice to :func:`resolve_kernel` at evaluation time, per fleet
    and point count).  Both paths are bit-identical, so the policy is a
    pure performance knob — it never changes results.
    """

    kernel: str = "auto"

    def __post_init__(self) -> None:
        _validate_kernel(self.kernel)


def resolve_kernel(fleet: SensorFleet, num_points: int, kernel: str = "auto") -> str:
    """Pick ``"dense"`` or ``"sparse"`` for one kernel evaluation.

    An explicit ``kernel="dense"``/``"sparse"`` is honoured as-is.
    ``"auto"`` first consults the ``FULLVIEW_KERNEL`` environment
    variable (same three values; ``"auto"`` there falls through), then
    applies the density heuristic: sparse when the workload is large
    enough (``points * sensors >= 16384`` pairs) and the expected
    candidate density ``pi * r_max**2 / area`` is at most 25%.
    """
    _validate_kernel(kernel)
    if kernel != "auto":
        return kernel
    env = os.environ.get(KERNEL_ENV_VAR)
    if env is not None and env != "":
        _validate_kernel(env)
        if env != "auto":
            return env
    n = len(fleet)
    if n == 0 or num_points * n < _SPARSE_MIN_PAIRS:
        return "dense"
    density = math.pi * fleet.max_radius**2 / fleet.region.area
    return "sparse" if density <= _SPARSE_DENSITY_CUTOFF else "dense"
