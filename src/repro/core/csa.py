"""Critical sensing area (Definition 2, Theorems 1 and 2).

The *critical sensing area* (CSA) ``s_c(n)`` for an event ``H`` is the
threshold on the weighted sensing area ``s_c = sum_y c_y s_y`` such
that ``P(H) -> 1`` whenever ``s_c >= c * s_c(n)`` for any ``c > 1``,
while ``P(H)`` stays bounded below 1 whenever ``s_c <= c * s_c(n)`` for
any ``c < 1``.

For the dense grid ``M`` with ``m = n log n`` points and effective
angle ``theta``, the paper's Theorems 1 and 2 give

- necessary condition (Theorem 1)::

      s_N,c(n) = -(pi /(theta*n)) * log(1 - (1 - 1/(n log n))**(1/K_N))

- sufficient condition (Theorem 2)::

      s_S,c(n) = -(2*pi/(theta*n)) * log(1 - (1 - 1/(n log n))**(1/K_S))

with ``K_N = ceil(pi/theta)`` and ``K_S = ceil(2*pi/theta)`` the sector
counts of the respective partitions.  (See DESIGN.md for how these
forms were reconstructed from the OCR'd text and validated against the
paper's own consistency checks: the theta = pi degeneration to the
1-coverage CSA, eq. (19), and the factor-two gap of Section VI-C.)

The ``*_xi`` variants expose the paper's sharper parametrised form with
``e^{-xi}/(n log n)`` in place of ``1/(n log n)`` (Propositions 1 and
3), used by the phase-transition analysis.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.core.conditions import sector_count_necessary, sector_count_sufficient
from repro.core.full_view import validate_effective_angle
from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI

__all__ = [
    "csa_curve_over_n",
    "csa_curve_over_theta",
    "csa_leading_order",
    "csa_necessary",
    "csa_necessary_xi",
    "csa_ratio",
    "csa_sufficient",
    "csa_sufficient_xi",
    "required_radius_homogeneous",
]


def _validate_n(n: int) -> int:
    """CSA formulas need ``n log n > 1``; ``n >= 2`` suffices."""
    if n < 2:
        raise InvalidParameterError(
            f"CSA formulas require n >= 2 (need n*log(n) > 1), got {n!r}"
        )
    return int(n)


def _csa(n: int, theta: float, coefficient_pi_multiple: float, sectors: int, xi: float) -> float:
    """Shared CSA kernel.

    ``s_c = -(coeff*pi/(theta*n)) * log(1 - (1 - e^{-xi}/(n log n))**(1/sectors))``
    """
    n = _validate_n(n)
    theta = validate_effective_angle(theta)
    if xi < 0:
        raise InvalidParameterError(f"xi must be non-negative, got {xi!r}")
    m = n * math.log(n)
    # (1 - eps)^(1/K): use exp/log1p for precision at large n.
    root = math.exp(math.log1p(-math.exp(-xi) / m) / sectors)
    if root >= 1.0:
        # The per-sector failure allowance underflowed (theta so small
        # that K = ceil(pi/theta) dwarfs float precision).
        raise InvalidParameterError(
            f"theta={theta!r} is too small to evaluate the CSA in float "
            "precision (sector count overwhelms the failure budget)"
        )
    return -(coefficient_pi_multiple * math.pi / (theta * n)) * math.log1p(-root)


def csa_necessary(n: int, theta: float) -> float:
    """``s_N,c(n)``: CSA for the necessary condition (Theorem 1)."""
    return _csa(n, theta, 1.0, sector_count_necessary(theta), 0.0)


def csa_sufficient(n: int, theta: float) -> float:
    """``s_S,c(n)``: CSA for the sufficient condition (Theorem 2)."""
    return _csa(n, theta, 2.0, sector_count_sufficient(theta), 0.0)


def csa_necessary_xi(n: int, theta: float, xi: float) -> float:
    """Proposition 1's parametrised necessary CSA (``e^{-xi}`` numerator).

    At ``xi = 0`` this is :func:`csa_necessary`.  Larger ``xi`` shrinks
    the allowed per-grid failure mass ``e^{-xi}/(n log n)`` and so
    *raises* the area threshold; Proposition 1 shows that even at this
    raised threshold the grid-failure probability stays at or above
    ``e^{-xi} - e^{-2 xi}`` asymptotically — which is what makes the
    necessary-condition CSA genuinely necessary.
    """
    return _csa(n, theta, 1.0, sector_count_necessary(theta), xi)


def csa_sufficient_xi(n: int, theta: float, xi: float) -> float:
    """Proposition 3's parametrised sufficient CSA."""
    return _csa(n, theta, 2.0, sector_count_sufficient(theta), xi)


def csa_ratio(n: int, theta: float) -> float:
    """``s_S,c(n) / s_N,c(n)`` — Section VI-C observes this is ~2."""
    return csa_sufficient(n, theta) / csa_necessary(n, theta)


def csa_leading_order(n: int, theta: float, condition: str = "necessary") -> float:
    """Leading-order approximation of the CSA for large ``n``.

    From Lemma 3's derivation, for large ``n``::

        s_c(n) ~ (coeff*pi/(theta*n)) * log(K * n * log n)
               = Theta((log n + log log n) / n)

    with ``coeff = 1, K = K_N`` (necessary) or ``coeff = 2, K = K_S``
    (sufficient).  Uses ``(1-eps)^{1/K} ~ 1 - eps/K``.
    """
    n = _validate_n(n)
    theta = validate_effective_angle(theta)
    if condition == "necessary":
        coeff, sectors = 1.0, sector_count_necessary(theta)
    elif condition == "sufficient":
        coeff, sectors = 2.0, sector_count_sufficient(theta)
    else:
        raise InvalidParameterError(
            f"condition must be 'necessary' or 'sufficient', got {condition!r}"
        )
    m = n * math.log(n)
    return (coeff * math.pi / (theta * n)) * math.log(sectors * m)


def csa_curve_over_theta(
    n: int, thetas: Iterable[float], condition: str = "necessary"
) -> np.ndarray:
    """Vector of CSA values across effective angles (Figure 7 driver)."""
    fn = csa_necessary if condition == "necessary" else csa_sufficient
    if condition not in ("necessary", "sufficient"):
        raise InvalidParameterError(
            f"condition must be 'necessary' or 'sufficient', got {condition!r}"
        )
    return np.array([fn(n, float(t)) for t in thetas], dtype=float)


def csa_curve_over_n(
    ns: Iterable[int], theta: float, condition: str = "necessary"
) -> np.ndarray:
    """Vector of CSA values across sensor counts (Figure 8 driver)."""
    fn = csa_necessary if condition == "necessary" else csa_sufficient
    if condition not in ("necessary", "sufficient"):
        raise InvalidParameterError(
            f"condition must be 'necessary' or 'sufficient', got {condition!r}"
        )
    return np.array([fn(int(n), theta) for n in ns], dtype=float)


def required_radius_homogeneous(n: int, theta: float, phi: float, q: float = 1.0, condition: str = "sufficient") -> float:
    """Sensing radius placing a homogeneous fleet at ``q x CSA``.

    Solves ``phi * r**2 / 2 = q * s_c(n)`` — the design question a
    network engineer actually asks ("how good must my cameras be?").
    """
    if phi <= 0 or phi > TWO_PI + 1e-12:
        raise InvalidParameterError(f"angle of view must be in (0, 2*pi], got {phi!r}")
    if q <= 0:
        raise InvalidParameterError(f"q must be positive, got {q!r}")
    base = csa_necessary(n, theta) if condition == "necessary" else csa_sufficient(n, theta)
    if condition not in ("necessary", "sufficient"):
        raise InvalidParameterError(
            f"condition must be 'necessary' or 'sufficient', got {condition!r}"
        )
    return math.sqrt(2.0 * q * base / min(phi, TWO_PI))
