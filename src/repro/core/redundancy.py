"""Redundancy and robustness of full-view coverage at a point.

Section VI-C observes that the sufficient condition over-provisions
("some sensors might be redundant if they stay close enough", Fig. 9
right) while the necessary condition under-provisions (a hole direction
can survive, Fig. 9 left).  This module makes those remarks
quantitative, working directly on the viewed directions
``psi_1..psi_k`` of the sensors covering a point:

- :func:`breach_cost` — the minimum number of sensors an adversary must
  disable to break full-view coverage: the smallest number of viewed
  directions inside any closed arc of width ``2*theta`` (disabling all
  sensors within ``theta`` of some facing direction makes it unsafe).
- :func:`minimum_guard_set` — an exact minimum-cardinality subset of
  the covering sensors that still full-view covers the point (the
  classic minimum circle cover by arcs, O(k^2)); its size is bounded
  below by ``ceil(pi/theta)``, the paper's per-point minimum.
- :func:`redundant_sensors` — sensors removable *individually* without
  breaking coverage.

All functions take raw direction arrays so they compose with both the
binary and probabilistic sensing models.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.core.full_view import validate_effective_angle
from repro.geometry.angles import TWO_PI, normalize_angle
from repro.geometry.intervals import max_circular_gap

__all__ = [
    "breach_cost",
    "is_covered",
    "minimum_guard_set",
    "redundant_sensors",
    "robustness_margin",
]


def _sorted_directions(directions: Sequence[float]) -> np.ndarray:
    return np.sort(normalize_angle(np.asarray(directions, dtype=float).ravel()))


def is_covered(directions: Sequence[float], theta: float) -> bool:
    """Exact full-view test (thin wrapper, for internal symmetry)."""
    theta = validate_effective_angle(theta)
    dirs = np.asarray(directions, dtype=float).ravel()
    return dirs.size > 0 and max_circular_gap(dirs) <= 2.0 * theta + 1e-12


def breach_cost(directions: Sequence[float], theta: float) -> int:
    """Minimum sensors to disable to break full-view coverage.

    Zero when the point is not full-view covered to begin with.  For a
    covered point this is ``min_d #{i : angdist(psi_i, d) <= theta}``
    over facing directions ``d`` — the count is piecewise constant with
    breakpoints at ``psi_i +/- theta``, so the minimum is attained on
    an interval between consecutive breakpoints and is found by
    evaluating interval midpoints, O(k^2).
    """
    theta = validate_effective_angle(theta)
    if not is_covered(directions, theta):
        return 0
    dirs = _sorted_directions(directions)
    k = dirs.size
    breakpoints = normalize_angle(
        np.concatenate([dirs - theta, dirs + theta])
    )
    breakpoints = np.unique(breakpoints)
    # Candidate facing directions: midpoints between consecutive
    # breakpoints (wrapping), plus the breakpoints themselves (the
    # closed-arc count can jump down exactly at a breakpoint).
    mids = normalize_angle(
        breakpoints + 0.5 * np.diff(np.concatenate([breakpoints, [breakpoints[0] + TWO_PI]]))
    )
    candidates = np.concatenate([breakpoints, mids])
    best = k
    for d in candidates:
        offsets = np.abs(np.mod(dirs - d + math.pi, TWO_PI) - math.pi)
        count = int((offsets <= theta + 1e-12).sum())
        if count < best:
            best = count
    return best


def minimum_guard_set(
    directions: Sequence[float], theta: float
) -> Optional[List[int]]:
    """An exact minimum subset of sensors that still full-view covers.

    Returns indices into ``directions`` (original order), or ``None``
    when even the full set does not cover.  This is minimum cover of
    the circle by the arcs ``[psi_i - theta, psi_i + theta]``: for each
    candidate first arc, greedily chain arcs that start within the
    covered prefix and extend it furthest, until the prefix wraps
    around; the best chain over all starts is optimal (standard
    circular interval covering).
    """
    theta = validate_effective_angle(theta)
    dirs = np.asarray(directions, dtype=float).ravel()
    if not is_covered(dirs, theta):
        return None
    order = np.argsort(normalize_angle(dirs))
    sorted_dirs = normalize_angle(dirs)[order]
    k = sorted_dirs.size
    if theta >= math.pi - 1e-12:
        # One sensor covers everything.
        return [int(order[0])]
    starts = normalize_angle(sorted_dirs - theta)
    extents = np.full(k, 2.0 * theta)

    best: Optional[List[int]] = None
    for first in range(k):
        chain = [first]
        cover_start = starts[first]
        cover_end = cover_start + extents[first]  # unwrapped coordinate
        failed = False
        while cover_end - cover_start < TWO_PI - 1e-12:
            # Furthest-reaching arc whose start lies in the covered
            # prefix (in unwrapped coordinates from cover_start).
            rel_starts = np.mod(starts - cover_start, TWO_PI)
            reachable = rel_starts <= (cover_end - cover_start) + 1e-12
            if not reachable.any():
                failed = True
                break
            reach_ends = rel_starts + extents
            candidate = int(np.argmax(np.where(reachable, reach_ends, -1.0)))
            new_end = cover_start + float(reach_ends[candidate])
            if new_end <= cover_end + 1e-15:
                failed = True  # no progress: uncoverable gap
                break
            cover_end = new_end
            chain.append(candidate)
        if not failed and (best is None or len(chain) < len(best)):
            best = chain
    if best is None:
        return None
    # Map back to original indices, deduplicated preserving order.
    result: List[int] = []
    for idx in best:
        original = int(order[idx])
        if original not in result:
            result.append(original)
    return result


def redundant_sensors(directions: Sequence[float], theta: float) -> List[int]:
    """Indices of sensors individually removable without breaking coverage.

    Exactly the paper's Fig. 9 (right) situation: sensor ``S`` can be
    removed when its neighbours' viewed directions stay within ``2*theta``
    of each other.  Empty when the point is not covered.
    """
    theta = validate_effective_angle(theta)
    dirs = np.asarray(directions, dtype=float).ravel()
    if not is_covered(dirs, theta):
        return []
    removable = []
    for i in range(dirs.size):
        rest = np.delete(dirs, i)
        if rest.size and max_circular_gap(rest) <= 2.0 * theta + 1e-12:
            removable.append(i)
    return removable


def robustness_margin(directions: Sequence[float], theta: float) -> float:
    """Fraction of covering sensors that must fail to break coverage.

    ``breach_cost / k`` — a dimensionless robustness score in [0, 1]
    comparable across points and fleets.  Zero when uncovered.
    """
    dirs = np.asarray(directions, dtype=float).ravel()
    if dirs.size == 0:
        return 0.0
    return breach_cost(dirs, theta) / dirs.size
