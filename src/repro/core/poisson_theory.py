"""Full-view condition probabilities under Poisson deployment (Section V).

Sensors form a 2-D Poisson point process of intensity ``lambda = n`` on
the unit square; group ``G_y`` is an independent thinning of intensity
``n_y = c_y n``.  For a sector ``T_j`` of the necessary partition
(central angle ``2*theta``, radius ``r_y``) the number of group-``y``
sensors inside is Poisson with mean ``theta * n_y * r_y**2`` (the
sector area times the intensity), and each is oriented to cover ``P``
independently with probability ``phi_y / (2*pi)``.

Theorem 3 (necessary)::

    Q_N,y = sum_{k>=1} Pois(k; theta n_y r_y^2) [1 - (1 - phi_y/2pi)^k]
    P_N   = [1 - prod_y (1 - Q_N,y)]^{K_N}

Theorem 4 (sufficient) is identical with sector mean
``theta n_y r_y^2 / 2`` and exponent ``K_S``.

By the Poisson thinning identity ``E[1-(1-p)^K] = 1 - e^{-lambda p}``
for ``K ~ Pois(lambda)``, each ``Q`` has the closed form
``1 - exp(-theta n_y s_y / pi)`` (necessary) and
``1 - exp(-theta n_y s_y / (2*pi))`` (sufficient) — the same exponent
rates as the uniform case's vacancy probabilities, which is why the
two deployment schemes agree asymptotically per point.  Both the
paper's truncated series and the closed form are implemented; tests
pin their agreement.
"""

from __future__ import annotations

import math
from typing import Literal

from scipy import stats

from repro.core.conditions import sector_count_necessary, sector_count_sufficient
from repro.core.full_view import validate_effective_angle
from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI
from repro.sensors.model import HeterogeneousProfile

__all__ = [
    "Method",
    "group_sector_success",
    "poisson_necessary_probability",
    "poisson_sufficient_probability",
    "uniform_poisson_gap",
]

Method = Literal["closed_form", "series"]

#: Series truncation: include terms until the Poisson tail is below this.
_SERIES_TAIL = 1e-15


def _sector_mean(n_y: float, radius: float, theta: float, condition: str) -> float:
    """Poisson mean of group-``y`` sensors in one partition sector."""
    if condition == "necessary":
        return theta * n_y * radius**2
    if condition == "sufficient":
        return 0.5 * theta * n_y * radius**2
    raise InvalidParameterError(
        f"condition must be 'necessary' or 'sufficient', got {condition!r}"
    )


def group_sector_success(
    n_y: float,
    radius: float,
    angle_of_view: float,
    theta: float,
    condition: str,
    method: Method = "closed_form",
) -> float:
    """``Q_y``: some group-``y`` sensor lies in the sector and covers ``P``.

    Parameters
    ----------
    n_y:
        Group intensity (expected group count on the unit square).
    method:
        ``"closed_form"`` uses the thinning identity; ``"series"``
        evaluates the paper's sum, truncated when the remaining Poisson
        tail is below 1e-15.
    """
    theta = validate_effective_angle(theta)
    if n_y < 0:
        raise InvalidParameterError(f"group intensity must be >= 0, got {n_y!r}")
    if n_y == 0:
        return 0.0
    mean = _sector_mean(n_y, radius, theta, condition)
    orient_p = angle_of_view / TWO_PI
    if method == "closed_form":
        return -math.expm1(-mean * orient_p)
    if method != "series":
        raise InvalidParameterError(
            f"method must be 'closed_form' or 'series', got {method!r}"
        )
    total = 0.0
    k = 1
    # Sum Pois(k; mean) * [1 - (1-p)^k] until the tail is negligible.
    while True:
        pmf = stats.poisson.pmf(k, mean)
        total += pmf * -math.expm1(k * math.log1p(-orient_p)) if orient_p < 1.0 else pmf
        if stats.poisson.sf(k, mean) < _SERIES_TAIL:
            break
        k += 1
        if k > 1_000_000:  # pragma: no cover - defensive
            raise InvalidParameterError("Poisson series failed to converge")
    return min(1.0, total)


def _condition_probability(
    profile: HeterogeneousProfile,
    n: int,
    theta: float,
    condition: str,
    method: Method,
) -> float:
    """Shared body of Theorems 3 and 4."""
    theta = validate_effective_angle(theta)
    if n < 1:
        raise InvalidParameterError(f"intensity n must be >= 1, got {n!r}")
    sectors = (
        sector_count_necessary(theta)
        if condition == "necessary"
        else sector_count_sufficient(theta)
    )
    log_all_vacant = 0.0
    for group in profile.groups:
        q = group_sector_success(
            n_y=group.fraction * n,
            radius=group.radius,
            angle_of_view=group.angle_of_view,
            theta=theta,
            condition=condition,
            method=method,
        )
        if q >= 1.0:
            log_all_vacant = -math.inf
            break
        log_all_vacant += math.log1p(-q)
    # Per-sector success = 1 - prod_y (1 - Q_y); raise to the sector count.
    sector_success = -math.expm1(log_all_vacant)
    if sector_success <= 0.0:
        return 0.0
    return math.exp(sectors * math.log(sector_success))


def poisson_necessary_probability(
    profile: HeterogeneousProfile,
    n: int,
    theta: float,
    method: Method = "closed_form",
) -> float:
    """Theorem 3: ``P_N``, probability a point meets the necessary condition.

    Neglecting edge effects this equals the expected fraction of the
    region's area meeting the condition (Section V's closing remark).
    """
    return _condition_probability(profile, n, theta, "necessary", method)


def poisson_sufficient_probability(
    profile: HeterogeneousProfile,
    n: int,
    theta: float,
    method: Method = "closed_form",
) -> float:
    """Theorem 4: ``P_S``, probability a point meets the sufficient condition."""
    return _condition_probability(profile, n, theta, "sufficient", method)


def uniform_poisson_gap(
    profile: HeterogeneousProfile, n: int, theta: float, condition: str = "necessary"
) -> float:
    """|uniform - Poisson| per-point success probability gap.

    Section V argues the two schemes behave differently in general yet
    their per-point formulas share exponent rates; this helper
    quantifies the finite-``n`` difference (it vanishes as
    ``n -> infinity``).
    """
    from repro.core.uniform_theory import point_failure_probability

    uniform_success = 1.0 - point_failure_probability(profile, n, theta, condition)
    poisson_success = _condition_probability(profile, n, theta, condition, "closed_form")
    return abs(uniform_success - poisson_success)
