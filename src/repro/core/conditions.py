"""The paper's geometric necessary and sufficient conditions.

Section III (necessary, Fig. 4) partitions the circle around a point
``P`` into sectors of central angle ``2*theta``: full sectors
``T_1 .. T_kN`` (``kN = floor(pi/theta)``) swept anticlockwise from a
start line, a remainder ``T_alpha`` of angle
``alpha = 2*pi - kN*2*theta in (0, 2*theta)`` when ``pi/theta`` is not
an integer, and a *patch* sector ``T_{kN+1}`` of angle ``2*theta``
sharing ``T_alpha``'s bisector.  The necessary condition: every one of
these ``ceil(pi/theta)`` sectors contains at least one sensor covering
``P`` — otherwise the empty sector's bisector is an unsafe facing
direction.

Section IV (sufficient, Fig. 6) repeats the construction with sector
angle ``theta`` (``kS = floor(2*pi/theta)`` full sectors, patch of
angle ``theta``), giving ``ceil(2*pi/theta)`` sectors: when every one
holds a covering sensor, any facing direction shares a ``theta``-wide
sector with some covering sensor and is therefore safe.

The chain ``sufficient => exact full-view => necessary`` is the
sandwich that motivates the CSA gap discussion in Section VI-C, and is
property-tested in the suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI, normalize_angle, validate_effective_angle
from repro.geometry.intervals import AngularInterval
from repro.sensors.fleet import SensorFleet

__all__ = [
    "Point",
    "SectorPartition",
    "condition_fraction",
    "necessary_condition_holds",
    "necessary_partition",
    "point_meets_necessary_condition",
    "point_meets_sufficient_condition",
    "sector_count_necessary",
    "sector_count_sufficient",
    "sufficient_condition_holds",
    "sufficient_partition",
]

Point = Tuple[float, float]

#: Remainder angles below this are treated as zero (no patch sector).
_ALPHA_TOL = 1e-9


def sector_count_necessary(theta: float) -> int:
    """Total sectors in the necessary partition: ``ceil(pi/theta)``.

    Equals ``kN`` when ``pi/theta`` is an integer (no patch sector) and
    ``kN + 1`` otherwise.
    """
    theta = validate_effective_angle(theta)
    ratio = math.pi / theta
    if not ratio < 2**31:
        raise InvalidParameterError(
            f"theta={theta!r} is too small: the sector count overflows"
        )
    return math.ceil(ratio - _ALPHA_TOL)


def sector_count_sufficient(theta: float) -> int:
    """Total sectors in the sufficient partition: ``ceil(2*pi/theta)``."""
    theta = validate_effective_angle(theta)
    ratio = TWO_PI / theta
    if not ratio < 2**31:
        raise InvalidParameterError(
            f"theta={theta!r} is too small: the sector count overflows"
        )
    return math.ceil(ratio - _ALPHA_TOL)


@dataclass(frozen=True)
class SectorPartition:
    """A concrete sector partition around a point.

    Attributes
    ----------
    sectors:
        The arcs that must each contain a covering sensor.  The last
        entry is the patch sector when the remainder ``alpha`` is
        positive; it overlaps its neighbours by construction.
    sector_angle:
        Central angle of each sector (``2*theta`` or ``theta``).
    alpha:
        The remainder angle (``0`` when the sector angle divides
        ``2*pi``).
    start:
        Heading of the start line the sweep began from.
    """

    sectors: Tuple[AngularInterval, ...]
    sector_angle: float
    alpha: float
    start: float

    @property
    def num_full_sectors(self) -> int:
        """The paper's ``k`` (sectors before the patch)."""
        return len(self.sectors) - (1 if self.alpha > _ALPHA_TOL else 0)

    def occupancy(self, directions: Sequence[float]) -> np.ndarray:
        """Boolean vector: does each sector contain some direction?"""
        directions = np.asarray(directions, dtype=float).ravel()
        result = np.zeros(len(self.sectors), dtype=bool)
        if directions.size == 0:
            return result
        offsets = normalize_angle(directions)
        for i, sector in enumerate(self.sectors):
            rel = np.mod(offsets - sector.start, TWO_PI)
            result[i] = bool((rel <= sector.extent + 1e-12).any())
        return result

    def all_occupied(self, directions: Sequence[float]) -> bool:
        """Whether every sector contains at least one direction."""
        return bool(self.occupancy(directions).all())

    def empty_sector_bisectors(self, directions: Sequence[float]) -> np.ndarray:
        """Bisectors of unoccupied sectors — the unsafe witnesses.

        For the necessary condition these are exactly the facing
        directions the paper exhibits to break full-view coverage.
        """
        occupied = self.occupancy(directions)
        return np.array(
            [s.midpoint for s, occ in zip(self.sectors, occupied) if not occ]
        )


def _build_partition(sector_angle: float, start: float) -> SectorPartition:
    """Sweep sectors of ``sector_angle`` anticlockwise from ``start``.

    Implements the construction shared by Figs. 4 and 6: full sectors,
    then a patch sector of the same angle centred on the remainder's
    bisector when the remainder is positive.
    """
    if not (0.0 < sector_angle <= TWO_PI + 1e-12):
        raise InvalidParameterError(
            f"sector angle must be in (0, 2*pi], got {sector_angle!r}"
        )
    sector_angle = min(sector_angle, TWO_PI)
    k = int(math.floor(TWO_PI / sector_angle + _ALPHA_TOL))
    alpha = TWO_PI - k * sector_angle
    if alpha < _ALPHA_TOL:
        alpha = 0.0
    sectors = [
        AngularInterval(start + j * sector_angle, sector_angle) for j in range(k)
    ]
    if alpha > 0.0:
        # Patch sector: same angle, bisector aligned with T_alpha's.
        alpha_bisector = start + k * sector_angle + 0.5 * alpha
        sectors.append(AngularInterval.centered(alpha_bisector, 0.5 * sector_angle))
    return SectorPartition(
        sectors=tuple(sectors),
        sector_angle=sector_angle,
        alpha=alpha,
        start=normalize_angle(start),
    )


def necessary_partition(theta: float, start: float = 0.0) -> SectorPartition:
    """The Fig. 4 partition: sectors of angle ``2*theta``."""
    theta = validate_effective_angle(theta)
    return _build_partition(2.0 * theta, start)


def sufficient_partition(theta: float, start: float = 0.0) -> SectorPartition:
    """The Fig. 6 partition: sectors of angle ``theta``."""
    theta = validate_effective_angle(theta)
    return _build_partition(theta, start)


def necessary_condition_holds(
    viewed_directions: Sequence[float], theta: float, start: float = 0.0
) -> bool:
    """Necessary condition from viewed directions alone.

    Every sector of the Fig. 4 partition (anchored at ``start``) must
    contain at least one viewed direction.  Full-view coverage implies
    this for *every* anchor; the paper fixes one start line, as we do
    by default.
    """
    return necessary_partition(theta, start).all_occupied(viewed_directions)


def sufficient_condition_holds(
    viewed_directions: Sequence[float], theta: float, start: float = 0.0
) -> bool:
    """Sufficient condition from viewed directions alone (Fig. 6)."""
    return sufficient_partition(theta, start).all_occupied(viewed_directions)


def point_meets_necessary_condition(
    fleet: SensorFleet, point: Point, theta: float, start: float = 0.0
) -> bool:
    """Necessary-condition test for a point against a deployed fleet."""
    return necessary_condition_holds(fleet.covering_directions(point), theta, start)


def point_meets_sufficient_condition(
    fleet: SensorFleet, point: Point, theta: float, start: float = 0.0
) -> bool:
    """Sufficient-condition test for a point against a deployed fleet."""
    return sufficient_condition_holds(fleet.covering_directions(point), theta, start)


def condition_fraction(
    fleet: SensorFleet,
    points: np.ndarray,
    theta: float,
    condition: str,
    start: float = 0.0,
    use_index: bool = True,
) -> float:
    """Fraction of points meeting the named condition.

    ``condition`` is ``"necessary"``, ``"sufficient"`` or ``"exact"``;
    the last delegates to the exact gap test so sweep drivers can treat
    all three uniformly.
    """
    from repro.core.full_view import is_full_view_covered  # local to avoid cycle

    pts = np.asarray(points, dtype=float).reshape(-1, 2)
    if pts.shape[0] == 0:
        raise InvalidParameterError("need at least one evaluation point")
    if condition == "necessary":
        partition = necessary_partition(theta, start)
        test = partition.all_occupied
    elif condition == "sufficient":
        partition = sufficient_partition(theta, start)
        test = partition.all_occupied
    elif condition == "exact":
        test = lambda dirs: is_full_view_covered(dirs, theta)  # noqa: E731
    else:
        raise InvalidParameterError(
            f"condition must be 'necessary', 'sufficient' or 'exact', got {condition!r}"
        )
    if use_index and fleet.index is None and len(fleet) > 0:
        fleet.build_index()
    hits = 0
    for x, y in pts:
        directions = fleet.covering_directions((float(x), float(y)), use_index=use_index)
        if test(directions):
            hits += 1
    return hits / pts.shape[0]
