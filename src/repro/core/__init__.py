"""The paper's primary contribution: full-view coverage theory.

Layout
------
- :mod:`repro.core.full_view` — the *exact* full-view coverage test
  (Definition 1) via the angular-gap criterion, plus rich per-point
  diagnostics.
- :mod:`repro.core.conditions` — the paper's geometric *necessary*
  (Section III, Fig. 4) and *sufficient* (Section IV, Fig. 6) sector
  conditions.
- :mod:`repro.core.csa` — critical sensing area (Definition 2,
  Theorems 1 and 2).
- :mod:`repro.core.uniform_theory` — per-point failure probabilities
  under uniform deployment (eqs. (2), (13)) and the Bonferroni grid
  bounds (eqs. (3)-(4), (14)-(15)).
- :mod:`repro.core.poisson_theory` — Theorems 3 and 4 (Poisson
  deployment).
- :mod:`repro.core.asymptotics` — Lemmas 1-3 as numerical tools.
- :mod:`repro.core.kcoverage` — classic 1-/k-coverage machinery used by
  the Section VII comparisons.
"""

from repro.core.conditions import (
    SectorPartition,
    necessary_condition_holds,
    point_meets_necessary_condition,
    point_meets_sufficient_condition,
    sector_count_necessary,
    sector_count_sufficient,
    sufficient_condition_holds,
)
from repro.core.csa import (
    csa_necessary,
    csa_sufficient,
    csa_necessary_xi,
    csa_sufficient_xi,
)
from repro.core.full_view import (
    FullViewDiagnostics,
    diagnose_point,
    full_view_coverage_fraction,
    is_full_view_covered,
    point_is_full_view_covered,
    safe_direction_set,
)
from repro.core.kcoverage import (
    critical_esr,
    implied_k,
    is_k_covered,
    k_coverage_fraction,
    kumar_sufficient_area,
    one_coverage_csa,
)
from repro.core.poisson_theory import (
    poisson_necessary_probability,
    poisson_sufficient_probability,
)
from repro.core.uniform_theory import (
    grid_failure_bounds,
    necessary_failure_probability,
    sufficient_failure_probability,
)

__all__ = [
    "FullViewDiagnostics",
    "SectorPartition",
    "critical_esr",
    "csa_necessary",
    "csa_necessary_xi",
    "csa_sufficient",
    "csa_sufficient_xi",
    "diagnose_point",
    "full_view_coverage_fraction",
    "grid_failure_bounds",
    "implied_k",
    "is_full_view_covered",
    "is_k_covered",
    "k_coverage_fraction",
    "kumar_sufficient_area",
    "necessary_condition_holds",
    "necessary_failure_probability",
    "one_coverage_csa",
    "point_is_full_view_covered",
    "point_meets_necessary_condition",
    "point_meets_sufficient_condition",
    "poisson_necessary_probability",
    "poisson_sufficient_probability",
    "safe_direction_set",
    "sector_count_necessary",
    "sector_count_sufficient",
    "sufficient_condition_holds",
]
