"""Lemmas 1-3 of the paper as reusable numerical tools.

These small analytic facts drive the CSA proofs; exposing them lets the
test suite verify each proof ingredient independently, and lets the
phase-transition experiment reason about orders of magnitude.

- Lemma 1: for ``0 < x < 1/2``,
  ``log(1 - x) in (-(x + 5/6 x^2), -(x + 1/2 x^2))``.
- Lemma 2: if ``x(n) in (0, 1/2)``, ``y(n) > 0`` and ``x^2 y -> 0``,
  then ``(1 - x)^y ~ e^{-x y}``.
- Lemma 3: with ``s_c`` at the necessary CSA,
  ``s_c = Theta((log n + log log n)/n)`` so ``s_c -> 0`` and
  ``n s_c^2 -> 0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import InvalidParameterError

__all__ = [
    "Lemma3Orders",
    "exp_approximation_error",
    "lemma3_orders",
    "log1m_bounds",
    "optimal_xi",
    "pow_one_minus_bounds",
    "proposition1_floor",
]


def log1m_bounds(x: float) -> Tuple[float, float]:
    """Lemma 1's sandwich on ``log(1 - x)`` for ``0 < x < 1/2``.

    Returns ``(lower, upper) = (-(x + 5/6 x^2), -(x + 1/2 x^2))`` with
    ``lower < log(1-x) < upper``.
    """
    if not (0.0 < x < 0.5):
        raise InvalidParameterError(f"Lemma 1 requires 0 < x < 1/2, got {x!r}")
    return (-(x + (5.0 / 6.0) * x * x), -(x + 0.5 * x * x))


def pow_one_minus_bounds(x: float, y: float) -> Tuple[float, float]:
    """Lemma 2's sandwich on ``(1 - x)^y``.

    Exponentiating Lemma 1: ``e^{-xy - 5/6 x^2 y} < (1-x)^y <
    e^{-xy - 1/2 x^2 y}``.  The interval collapses onto ``e^{-xy}``
    as ``x^2 y -> 0``.
    """
    if y <= 0:
        raise InvalidParameterError(f"Lemma 2 requires y > 0, got {y!r}")
    lower_log, upper_log = log1m_bounds(x)
    return (math.exp(y * lower_log), math.exp(y * upper_log))


def exp_approximation_error(x: float, y: float) -> float:
    """Relative error of the Lemma 2 approximation ``(1-x)^y ~ e^{-xy}``.

    Returns ``|(1-x)^y - e^{-xy}| / e^{-xy}``; bounded by
    ``1 - e^{-5/6 x^2 y}`` on the lemma's domain.
    """
    if not (0.0 < x < 0.5) or y <= 0:
        raise InvalidParameterError("requires 0 < x < 1/2 and y > 0")
    exact = math.exp(y * math.log1p(-x))
    approx = math.exp(-x * y)
    return abs(exact - approx) / approx


@dataclass(frozen=True)
class Lemma3Orders:
    """The quantities Lemma 3 sends to zero, evaluated at finite ``n``."""

    s_c: float
    s_c_over_order: float
    n_s_c_squared: float


def lemma3_orders(n: int, theta: float) -> Lemma3Orders:
    """Evaluate Lemma 3's vanishing quantities at the necessary CSA.

    ``s_c_over_order`` is ``s_c / ((log n + log log n)/n)``, which
    Lemma 3 says converges to a positive constant
    (``pi/(theta)`` up to the sector-count factor); ``n_s_c_squared``
    is ``n * s_c^2 -> 0``.
    """
    from repro.core.csa import csa_necessary  # local import avoids a cycle

    if n < 3:
        raise InvalidParameterError(f"need n >= 3 for log log n > 0, got {n!r}")
    s_c = csa_necessary(n, theta)
    order = (math.log(n) + math.log(math.log(n))) / n
    return Lemma3Orders(
        s_c=s_c,
        s_c_over_order=s_c / order,
        n_s_c_squared=n * s_c * s_c,
    )


def proposition1_floor(xi: float) -> float:
    """Proposition 1's asymptotic failure floor ``e^{-xi} - e^{-2 xi}``.

    At the parametrised CSA the grid-failure probability stays at or
    above this value, which is maximised at ``xi = log 2`` with value
    ``1/4`` — the strongest obstruction the proof certifies.
    """
    if xi < 0:
        raise InvalidParameterError(f"xi must be non-negative, got {xi!r}")
    return math.exp(-xi) - math.exp(-2.0 * xi)


def optimal_xi() -> float:
    """The ``xi`` maximising :func:`proposition1_floor` (``log 2``)."""
    return math.log(2.0)
