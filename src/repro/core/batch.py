"""Vectorised batch evaluation of coverage over many points.

The scalar path (:meth:`SensorFleet.covering_directions` per point) is
the readable reference; this module evaluates *all* points of a grid
against *all* sensors with numpy broadcasting, chunked to bound memory.
Results are bit-identical to the scalar path (property-tested), and the
speedup makes the grid-level experiments (PHASE, GAP, BARRIER) an order
of magnitude cheaper.

The core object is the boolean *covering matrix* ``C[i, j]`` — does
sensor ``j`` cover point ``i`` — together with the per-pair viewed
directions, from which every condition (exact gap test, sector
occupancy, k-coverage) is evaluated without further geometry.

Two evaluation paths produce that object. The *dense* path broadcasts
every point against every sensor. The *sparse* path prunes candidates
through :meth:`ToroidalCellIndex.query_radius_batch` and evaluates only
(point, sensor) pairs whose cells intersect the largest sensing disk —
in the paper's regime (``r ~ sqrt(log n / n)``) that is ``O(log n)``
pairs per point instead of ``n``. The sparse path applies the exact
same float formulas pairwise and feeds the same gap reduction, so both
paths are bit-identical (property-tested); dispatch between them goes
through :func:`repro.core.kernels.resolve_kernel` via the ``kernel=``
argument every public kernel accepts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.conditions import necessary_partition, sufficient_partition
from repro.core.kernels import resolve_kernel
from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI, validate_effective_angle
from repro.obs.metrics import active_metrics
from repro.obs.trace import span
from repro.sensors.fleet import SensorFleet

__all__ = [
    "SparseCovering",
    "condition_mask",
    "coverage_counts",
    "coverage_fraction_fast",
    "covering_and_directions",
    "full_view_mask",
    "max_gaps",
    "sparse_covering_pairs",
]

#: Cap on the pairwise block size (points x sensors) per chunk.
_MAX_PAIRS_PER_CHUNK = 4_000_000


def _chunk_rows(num_points: int, num_sensors: int) -> int:
    """Points per chunk so each pairwise block stays under the cap."""
    if num_sensors == 0:
        return num_points
    return max(1, _MAX_PAIRS_PER_CHUNK // max(1, num_sensors))


def covering_and_directions(
    fleet: SensorFleet, points: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Covering matrix and viewed directions for every (point, sensor) pair.

    Returns
    -------
    covers:
        Boolean ``(m, n)``; ``covers[i, j]`` iff sensor ``j`` covers
        point ``i`` (sector model; a sensor coincident with the point
        counts as covering, mirroring the scalar path).
    directions:
        Float ``(m, n)``; heading ``P_i -> S_j`` in ``[0, 2*pi)``
        (``nan`` for coincident pairs, which the gap test skips —
        matching the scalar path's drop of coincident sensors).
    """
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    m = points.shape[0]
    n = len(fleet)
    covers = np.zeros((m, n), dtype=bool)
    directions = np.full((m, n), np.nan)
    if n == 0 or m == 0:
        return covers, directions
    positions = fleet.positions
    orientations = fleet.orientations
    radii = fleet.radii
    half_angles = 0.5 * fleet.angles
    region = fleet.region
    rows = _chunk_rows(m, n)
    for start in range(0, m, rows):
        stop = min(m, start + rows)
        block = points[start:stop]
        # delta[i, j] = S_j - P_i (wrapped): direction P -> S.
        delta = region.pairwise_displacements(block, positions)
        dist_sq = delta[..., 0] ** 2 + delta[..., 1] ** 2
        within = dist_sq <= radii[None, :] ** 2
        heading_ps = np.arctan2(delta[..., 1], delta[..., 0])
        # Sensor-to-point bearing is the opposite heading.
        bearing_sp = heading_ps + math.pi
        offset = np.abs(
            np.mod(bearing_sp - orientations[None, :] + math.pi, TWO_PI) - math.pi
        )
        in_wedge = offset <= half_angles[None, :] + 1e-12
        coincident = dist_sq <= 1e-24  # apex tolerance, mirroring the scalar path
        covers[start:stop] = within & (in_wedge | coincident)
        block_dirs = np.mod(heading_ps, TWO_PI)
        block_dirs[coincident] = np.nan
        directions[start:stop] = block_dirs
    return covers, directions


@dataclass(frozen=True)
class SparseCovering:
    """CSR covering data over candidate (point, sensor) pairs only.

    The sparse analogue of :func:`covering_and_directions`: row ``i``
    of the CSR structure holds point ``i``'s candidate sensors (cells
    intersecting the largest sensing disk — a superset of its covering
    sensors), with the covering verdict and viewed direction evaluated
    per pair by the exact dense formulas.  Pairs outside the candidate
    set are guaranteed non-covering, so every per-point reduction over
    this structure matches its dense counterpart bit for bit.
    """

    #: ``(m + 1,)`` prefix offsets; point ``i``'s pairs occupy
    #: ``[indptr[i], indptr[i + 1])`` of the flat arrays.
    indptr: np.ndarray
    #: ``(nnz,)`` sensor ids, ascending within each row.
    sensors: np.ndarray
    #: ``(nnz,)`` covering verdicts.
    covers: np.ndarray
    #: ``(nnz,)`` viewed directions in ``[0, 2*pi)``; ``nan`` for
    #: coincident pairs, matching the dense matrix.
    directions: np.ndarray

    @property
    def num_points(self) -> int:
        return self.indptr.shape[0] - 1

    def rows(self) -> np.ndarray:
        """Point id of each flat pair (``(nnz,)``)."""
        return np.repeat(
            np.arange(self.num_points, dtype=np.intp), np.diff(self.indptr)
        )

    def to_dense(self, num_sensors: int) -> Tuple[np.ndarray, np.ndarray]:
        """Scatter back to the dense ``(m, n)`` matrices (test helper).

        Non-candidate pairs get ``covers=False`` and ``nan`` direction —
        note the dense path stores real directions for non-covering
        pairs too, so only compare directions where ``covers`` is true.
        """
        m = self.num_points
        covers = np.zeros((m, num_sensors), dtype=bool)
        directions = np.full((m, num_sensors), np.nan)
        rows = self.rows()
        covers[rows, self.sensors] = self.covers
        directions[rows, self.sensors] = self.directions
        return covers, directions


def sparse_covering_pairs(fleet: SensorFleet, points: np.ndarray) -> SparseCovering:
    """Covering verdicts and directions over candidate pairs only.

    Candidates come from the fleet's cell index (built on demand and
    cached on the fleet) queried at the largest sensing radius with no
    distance refinement — a cell-level superset, nudged up one ulp so
    borderline float comparisons can never lose a covering pair.  Each
    candidate pair is then evaluated with the same displacement, radius,
    wedge and coincidence formulas as the dense path, chunked to bound
    memory.
    """
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    m = points.shape[0]
    n = len(fleet)
    if m == 0 or n == 0:
        return SparseCovering(
            indptr=np.zeros(m + 1, dtype=np.intp),
            sensors=np.empty(0, dtype=np.intp),
            covers=np.empty(0, dtype=bool),
            directions=np.empty(0, dtype=float),
        )
    index = fleet.index if fleet.index is not None else fleet.build_index()
    reach_radius = float(np.nextafter(fleet.max_radius, np.inf))
    with span("sparse_pairs", points=m, sensors=n):
        indptr, sensors = index.query_radius_batch(points, reach_radius, refine=False)
        nnz = sensors.shape[0]
        rows = np.repeat(np.arange(m, dtype=np.intp), np.diff(indptr))
        covers = np.empty(nnz, dtype=bool)
        directions = np.empty(nnz, dtype=float)
        positions = fleet.positions
        orientations = fleet.orientations
        radii = fleet.radii
        half_angles = 0.5 * fleet.angles
        region = fleet.region
        for start in range(0, nnz, _MAX_PAIRS_PER_CHUNK):
            sl = slice(start, min(nnz, start + _MAX_PAIRS_PER_CHUNK))
            s = sensors[sl]
            p = rows[sl]
            delta = region.elementwise_displacements(points[p], positions[s])
            dist_sq = delta[:, 0] ** 2 + delta[:, 1] ** 2
            within = dist_sq <= radii[s] ** 2
            heading_ps = np.arctan2(delta[:, 1], delta[:, 0])
            bearing_sp = heading_ps + math.pi
            offset = np.abs(
                np.mod(bearing_sp - orientations[s] + math.pi, TWO_PI) - math.pi
            )
            in_wedge = offset <= half_angles[s] + 1e-12
            coincident = dist_sq <= 1e-24  # apex tolerance, as in the dense path
            covers[sl] = within & (in_wedge | coincident)
            pair_dirs = np.mod(heading_ps, TWO_PI)
            pair_dirs[coincident] = np.nan
            directions[sl] = pair_dirs
    return SparseCovering(
        indptr=indptr, sensors=sensors, covers=covers, directions=directions
    )


def _resolve_and_count(fleet: SensorFleet, num_points: int, kernel: str) -> str:
    """Resolve the kernel choice and record it in the obs counters."""
    resolved = resolve_kernel(fleet, num_points, kernel)
    registry = active_metrics()
    if registry is not None:
        registry.inc(f"kernel_{resolved}")
    return resolved


def _sparse_valid_padded(sp: SparseCovering) -> Tuple[np.ndarray, np.ndarray]:
    """Per-point counts and inf-padded sorted direction rows.

    Packs each point's valid (covering, non-coincident) directions into
    a ``(m, width)`` matrix shaped exactly like the dense path's sorted
    masked rows — the same value set in the same ascending order, just
    narrower — so :func:`_max_gap_rows` runs unchanged on it and the
    gaps come out bit-identical.
    """
    m = sp.num_points
    valid = sp.covers & ~np.isnan(sp.directions)
    rows = sp.rows()[valid]
    dirs = sp.directions[valid]
    # bincount/lexsort are the sparse path's core; the array-API backend swap
    # will route them through a per-backend shim (ROADMAP item 4).
    counts = np.bincount(rows, minlength=m)  # fvlint: disable=FV009 (shim, see above)
    width = int(counts.max()) if m > 0 else 0
    padded = np.full((m, width), np.inf)
    if dirs.size:
        order = np.lexsort((dirs, rows))  # fvlint: disable=FV009 (shim, see above)
        rows_sorted = rows[order]
        starts = np.zeros(m, dtype=np.intp)
        np.cumsum(counts[:-1], out=starts[1:])
        slots = np.arange(rows_sorted.size, dtype=np.intp) - starts[rows_sorted]
        padded[rows_sorted, slots] = dirs[order]
    return counts, padded


def coverage_counts(
    fleet: SensorFleet, points: np.ndarray, kernel: str = "auto"
) -> np.ndarray:
    """Vectorised per-point covering-sensor counts."""
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    resolved = _resolve_and_count(fleet, points.shape[0], kernel)
    if resolved == "sparse":
        sp = sparse_covering_pairs(fleet, points)
        return np.bincount(  # fvlint: disable=FV009 (backend shim, ROADMAP item 4)
            sp.rows()[sp.covers], minlength=sp.num_points
        )
    covers, _ = covering_and_directions(fleet, points)
    return covers.sum(axis=1)


def _max_gap_rows(directions_sorted: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Largest circular gap per row of a padded sorted-direction matrix.

    ``directions_sorted`` is ``(m, n)`` with each row's valid entries
    sorted ascending and invalid entries set to ``inf``; ``counts``
    holds the number of valid entries per row.
    """
    m, n = directions_sorted.shape
    gaps = np.full(m, TWO_PI)
    multi = counts >= 2
    if not multi.any():
        return gaps
    rows = directions_sorted[multi]
    k = counts[multi]
    # Zero the inf padding so np.diff never produces inf - inf, then
    # mask the invalid diff columns (j >= k - 1) out of the row max.
    vals = np.where(np.isfinite(rows), rows, 0.0)
    diffs = np.diff(vals, axis=1)
    valid = np.arange(n - 1)[None, :] < (k - 1)[:, None]
    inner = np.where(valid, diffs, -np.inf).max(axis=1)
    first = vals[:, 0]
    last = vals[np.arange(rows.shape[0]), k - 1]
    wrap = TWO_PI - (last - first)
    gaps[multi] = np.maximum(inner, wrap)
    return gaps


def _max_gaps_impl(fleet: SensorFleet, points: np.ndarray, resolved: str) -> np.ndarray:
    """Gap computation for an already-resolved kernel choice."""
    if resolved == "sparse":
        sp = sparse_covering_pairs(fleet, points)
        counts, padded = _sparse_valid_padded(sp)
        return _max_gap_rows(padded, counts)
    covers, directions = covering_and_directions(fleet, points)
    masked = np.where(covers & ~np.isnan(directions), directions, np.inf)
    masked.sort(axis=1)
    counts = (covers & ~np.isnan(directions)).sum(axis=1)
    return _max_gap_rows(masked, counts)


def max_gaps(
    fleet: SensorFleet, points: np.ndarray, kernel: str = "auto"
) -> np.ndarray:
    """Largest circular gap of covering viewed directions per point.

    Points with fewer than two covering sensors get ``2*pi`` (a single
    sensor leaves the opposite direction unsafe for any
    ``theta < pi``; the ``<=`` comparison handles ``theta = pi``).
    """
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    resolved = _resolve_and_count(fleet, points.shape[0], kernel)
    return _max_gaps_impl(fleet, points, resolved)


def _full_view_impl(
    fleet: SensorFleet, points: np.ndarray, theta: float, resolved: str
) -> np.ndarray:
    """Full-view verdicts for an already-resolved kernel choice."""
    if resolved == "sparse":
        sp = sparse_covering_pairs(fleet, points)
        counts, padded = _sparse_valid_padded(sp)
        gaps = _max_gap_rows(padded, counts)
        return (counts >= 1) & (gaps <= 2.0 * theta + 1e-12)
    covers, directions = covering_and_directions(fleet, points)
    valid = covers & ~np.isnan(directions)
    counts = valid.sum(axis=1)
    masked = np.where(valid, directions, np.inf)
    masked.sort(axis=1)
    gaps = _max_gap_rows(masked, counts)
    return (counts >= 1) & (gaps <= 2.0 * theta + 1e-12)


def full_view_mask(
    fleet: SensorFleet, points: np.ndarray, theta: float, kernel: str = "auto"
) -> np.ndarray:
    """Exact full-view verdict for every point, vectorised.

    Equivalent to calling
    :func:`repro.core.full_view.point_is_full_view_covered` per point.
    """
    theta = validate_effective_angle(theta)
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    resolved = _resolve_and_count(fleet, points.shape[0], kernel)
    return _full_view_impl(fleet, points, theta, resolved)


def condition_mask(
    fleet: SensorFleet,
    points: np.ndarray,
    theta: float,
    condition: str,
    k: int = 1,
    kernel: str = "auto",
) -> np.ndarray:
    """Vectorised verdicts for any named condition.

    ``condition`` is ``"exact"``, ``"necessary"``, ``"sufficient"``
    (the sector conditions use the default start line, like the scalar
    path) or ``"k_coverage"`` — at least ``k`` covering sensors,
    equivalent to ``coverage_counts(fleet, points) >= k``
    (property-tested); ``k`` is ignored by the other conditions.
    """
    theta = validate_effective_angle(theta)
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    if condition == "k_coverage" and k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k!r}")
    if condition == "necessary":
        partition = necessary_partition(theta)
    elif condition == "sufficient":
        partition = sufficient_partition(theta)
    elif condition in ("exact", "k_coverage"):
        partition = None
    else:
        raise InvalidParameterError(
            "condition must be 'exact', 'necessary', 'sufficient' or "
            f"'k_coverage', got {condition!r}"
        )
    resolved = _resolve_and_count(fleet, points.shape[0], kernel)
    if condition == "exact":
        return _full_view_impl(fleet, points, theta, resolved)
    if condition == "k_coverage":
        if resolved == "sparse":
            sp = sparse_covering_pairs(fleet, points)
            return (
                np.bincount(  # fvlint: disable=FV009 (backend shim, ROADMAP item 4)
                    sp.rows()[sp.covers], minlength=sp.num_points
                )
                >= k
            )
        covers, _ = covering_and_directions(fleet, points)
        return covers.sum(axis=1) >= k
    if resolved == "sparse":
        sp = sparse_covering_pairs(fleet, points)
        valid = sp.covers & ~np.isnan(sp.directions)
        rows = sp.rows()
        m = sp.num_points
        result = np.ones(m, dtype=bool)
        for sector in partition.sectors:
            rel = np.mod(sp.directions - sector.start, TWO_PI)
            in_sector = valid & (rel <= sector.extent + 1e-12)
            result &= (  # fvlint: disable=FV009 (backend shim, ROADMAP item 4)
                np.bincount(rows[in_sector], minlength=m) > 0
            )
        return result
    covers, directions = covering_and_directions(fleet, points)
    valid = covers & ~np.isnan(directions)
    m = covers.shape[0]
    result = np.ones(m, dtype=bool)
    for sector in partition.sectors:
        rel = np.mod(directions - sector.start, TWO_PI)
        in_sector = valid & (rel <= sector.extent + 1e-12)
        result &= in_sector.any(axis=1)
    return result


def coverage_fraction_fast(
    fleet: SensorFleet,
    points: np.ndarray,
    theta: float,
    condition: str = "exact",
    k: int = 1,
    kernel: str = "auto",
) -> float:
    """Vectorised counterpart of the scalar coverage-fraction helpers."""
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    if points.shape[0] == 0:
        raise InvalidParameterError("need at least one evaluation point")
    mask = condition_mask(fleet, points, theta, condition, k=k, kernel=kernel)
    return float(mask.mean())
