"""Vectorised batch evaluation of coverage over many points.

The scalar path (:meth:`SensorFleet.covering_directions` per point) is
the readable reference; this module evaluates *all* points of a grid
against *all* sensors with numpy broadcasting, chunked to bound memory.
Results are bit-identical to the scalar path (property-tested), and the
speedup makes the grid-level experiments (PHASE, GAP, BARRIER) an order
of magnitude cheaper.

The core object is the boolean *covering matrix* ``C[i, j]`` — does
sensor ``j`` cover point ``i`` — together with the per-pair viewed
directions, from which every condition (exact gap test, sector
occupancy, k-coverage) is evaluated without further geometry.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.core.conditions import necessary_partition, sufficient_partition
from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI, validate_effective_angle
from repro.sensors.fleet import SensorFleet

__all__ = [
    "condition_mask",
    "coverage_counts",
    "coverage_fraction_fast",
    "covering_and_directions",
    "full_view_mask",
    "max_gaps",
]

#: Cap on the pairwise block size (points x sensors) per chunk.
_MAX_PAIRS_PER_CHUNK = 4_000_000


def _chunk_rows(num_points: int, num_sensors: int) -> int:
    """Points per chunk so each pairwise block stays under the cap."""
    if num_sensors == 0:
        return num_points
    return max(1, _MAX_PAIRS_PER_CHUNK // max(1, num_sensors))


def covering_and_directions(
    fleet: SensorFleet, points: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Covering matrix and viewed directions for every (point, sensor) pair.

    Returns
    -------
    covers:
        Boolean ``(m, n)``; ``covers[i, j]`` iff sensor ``j`` covers
        point ``i`` (sector model; a sensor coincident with the point
        counts as covering, mirroring the scalar path).
    directions:
        Float ``(m, n)``; heading ``P_i -> S_j`` in ``[0, 2*pi)``
        (``nan`` for coincident pairs, which the gap test skips —
        matching the scalar path's drop of coincident sensors).
    """
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    m = points.shape[0]
    n = len(fleet)
    covers = np.zeros((m, n), dtype=bool)
    directions = np.full((m, n), np.nan)
    if n == 0 or m == 0:
        return covers, directions
    positions = fleet.positions
    orientations = fleet.orientations
    radii = fleet.radii
    half_angles = 0.5 * fleet.angles
    region = fleet.region
    rows = _chunk_rows(m, n)
    for start in range(0, m, rows):
        stop = min(m, start + rows)
        block = points[start:stop]
        # delta[i, j] = S_j - P_i (wrapped): direction P -> S.
        delta = region.pairwise_displacements(block, positions)
        dist_sq = delta[..., 0] ** 2 + delta[..., 1] ** 2
        within = dist_sq <= radii[None, :] ** 2
        heading_ps = np.arctan2(delta[..., 1], delta[..., 0])
        # Sensor-to-point bearing is the opposite heading.
        bearing_sp = heading_ps + math.pi
        offset = np.abs(
            np.mod(bearing_sp - orientations[None, :] + math.pi, TWO_PI) - math.pi
        )
        in_wedge = offset <= half_angles[None, :] + 1e-12
        coincident = dist_sq <= 1e-24  # apex tolerance, mirroring the scalar path
        covers[start:stop] = within & (in_wedge | coincident)
        block_dirs = np.mod(heading_ps, TWO_PI)
        block_dirs[coincident] = np.nan
        directions[start:stop] = block_dirs
    return covers, directions


def coverage_counts(fleet: SensorFleet, points: np.ndarray) -> np.ndarray:
    """Vectorised per-point covering-sensor counts."""
    covers, _ = covering_and_directions(fleet, points)
    return covers.sum(axis=1)


def _max_gap_rows(directions_sorted: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Largest circular gap per row of a padded sorted-direction matrix.

    ``directions_sorted`` is ``(m, n)`` with each row's valid entries
    sorted ascending and invalid entries set to ``inf``; ``counts``
    holds the number of valid entries per row.
    """
    m, n = directions_sorted.shape
    gaps = np.full(m, TWO_PI)
    multi = counts >= 2
    if not multi.any():
        return gaps
    rows = directions_sorted[multi]
    k = counts[multi]
    # Zero the inf padding so np.diff never produces inf - inf, then
    # mask the invalid diff columns (j >= k - 1) out of the row max.
    vals = np.where(np.isfinite(rows), rows, 0.0)
    diffs = np.diff(vals, axis=1)
    valid = np.arange(n - 1)[None, :] < (k - 1)[:, None]
    inner = np.where(valid, diffs, -np.inf).max(axis=1)
    first = vals[:, 0]
    last = vals[np.arange(rows.shape[0]), k - 1]
    wrap = TWO_PI - (last - first)
    gaps[multi] = np.maximum(inner, wrap)
    return gaps


def max_gaps(fleet: SensorFleet, points: np.ndarray) -> np.ndarray:
    """Largest circular gap of covering viewed directions per point.

    Points with fewer than two covering sensors get ``2*pi`` (a single
    sensor leaves the opposite direction unsafe for any
    ``theta < pi``; the ``<=`` comparison handles ``theta = pi``).
    """
    covers, directions = covering_and_directions(fleet, points)
    masked = np.where(covers & ~np.isnan(directions), directions, np.inf)
    masked.sort(axis=1)
    counts = (covers & ~np.isnan(directions)).sum(axis=1)
    return _max_gap_rows(masked, counts)


def full_view_mask(
    fleet: SensorFleet, points: np.ndarray, theta: float
) -> np.ndarray:
    """Exact full-view verdict for every point, vectorised.

    Equivalent to calling
    :func:`repro.core.full_view.point_is_full_view_covered` per point.
    """
    theta = validate_effective_angle(theta)
    covers, directions = covering_and_directions(fleet, points)
    valid = covers & ~np.isnan(directions)
    counts = valid.sum(axis=1)
    masked = np.where(valid, directions, np.inf)
    masked.sort(axis=1)
    gaps = _max_gap_rows(masked, counts)
    return (counts >= 1) & (gaps <= 2.0 * theta + 1e-12)


def condition_mask(
    fleet: SensorFleet,
    points: np.ndarray,
    theta: float,
    condition: str,
    k: int = 1,
) -> np.ndarray:
    """Vectorised verdicts for any named condition.

    ``condition`` is ``"exact"``, ``"necessary"``, ``"sufficient"``
    (the sector conditions use the default start line, like the scalar
    path) or ``"k_coverage"`` — at least ``k`` covering sensors,
    equivalent to ``coverage_counts(fleet, points) >= k``
    (property-tested); ``k`` is ignored by the other conditions.
    """
    theta = validate_effective_angle(theta)
    if condition == "exact":
        return full_view_mask(fleet, points, theta)
    if condition == "k_coverage":
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k!r}")
        return coverage_counts(fleet, points) >= k
    if condition == "necessary":
        partition = necessary_partition(theta)
    elif condition == "sufficient":
        partition = sufficient_partition(theta)
    else:
        raise InvalidParameterError(
            "condition must be 'exact', 'necessary', 'sufficient' or "
            f"'k_coverage', got {condition!r}"
        )
    covers, directions = covering_and_directions(fleet, points)
    valid = covers & ~np.isnan(directions)
    m = covers.shape[0]
    result = np.ones(m, dtype=bool)
    for sector in partition.sectors:
        rel = np.mod(directions - sector.start, TWO_PI)
        in_sector = valid & (rel <= sector.extent + 1e-12)
        result &= in_sector.any(axis=1)
    return result


def coverage_fraction_fast(
    fleet: SensorFleet,
    points: np.ndarray,
    theta: float,
    condition: str = "exact",
    k: int = 1,
) -> float:
    """Vectorised counterpart of the scalar coverage-fraction helpers."""
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    if points.shape[0] == 0:
        raise InvalidParameterError("need at least one evaluation point")
    mask = condition_mask(fleet, points, theta, condition, k=k)
    return float(mask.mean())
