"""Design solvers: inverting the theory into engineering answers.

Section VII-C argues the CSA's value is that "designers and engineers
can assess the demand for the quality of cameras on the basis of it".
This module completes that promise by inverting the per-point formulas
numerically:

- :func:`solve_n_for_point_probability` — fewest sensors of a given
  profile shape reaching a target per-point condition probability;
- :func:`solve_area_for_point_probability` — smallest weighted sensing
  area doing the same at fixed ``n``;
- :func:`design_report` — the full bill of requirements for a scenario
  (CSA thresholds, minimum n, minimum area, per-camera radius).

All solvers work on the exact monotone formulas (eq. (2)/(13) or the
Poisson theorems), by bisection; monotonicity in ``n`` and ``s_c`` is
what makes the inversion well-posed (and is property-tested).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

from repro.core.csa import csa_necessary, csa_sufficient
from repro.core.poisson_theory import (
    poisson_necessary_probability,
    poisson_sufficient_probability,
)
from repro.core.uniform_theory import point_failure_probability
from repro.errors import ConvergenceError, InvalidParameterError
from repro.sensors.model import HeterogeneousProfile

__all__ = [
    "Condition",
    "DesignReport",
    "Scheme",
    "design_report",
    "point_success_probability",
    "solve_area_for_point_probability",
    "solve_n_for_point_probability",
]

Condition = Literal["necessary", "sufficient"]
Scheme = Literal["uniform", "poisson"]

#: Hard cap for the n bisection, far beyond practical fleets.
_MAX_N = 100_000_000


def point_success_probability(
    profile: HeterogeneousProfile,
    n: int,
    theta: float,
    condition: Condition = "necessary",
    scheme: Scheme = "uniform",
) -> float:
    """P(a point meets the condition) under either deployment scheme."""
    if scheme == "uniform":
        return 1.0 - point_failure_probability(profile, n, theta, condition)
    if scheme != "poisson":
        raise InvalidParameterError(
            f"scheme must be 'uniform' or 'poisson', got {scheme!r}"
        )
    fn = (
        poisson_necessary_probability
        if condition == "necessary"
        else poisson_sufficient_probability
    )
    return fn(profile, n, theta)


def solve_n_for_point_probability(
    profile: HeterogeneousProfile,
    theta: float,
    target: float,
    condition: Condition = "necessary",
    scheme: Scheme = "uniform",
) -> int:
    """Smallest ``n`` with point success probability >= ``target``.

    Raises :class:`ConvergenceError` when even ``10^8`` sensors cannot
    reach the target (e.g. per-camera areas so small that float
    precision swallows the per-sensor contribution).
    """
    if not (0.0 < target < 1.0):
        raise InvalidParameterError(f"target must be in (0, 1), got {target!r}")
    lo, hi = 1, 2
    while point_success_probability(profile, hi, theta, condition, scheme) < target:
        hi *= 2
        if hi > _MAX_N:
            raise ConvergenceError(
                f"no n <= {_MAX_N} reaches target {target} for this profile"
            )
    while lo < hi:
        mid = (lo + hi) // 2
        if point_success_probability(profile, mid, theta, condition, scheme) >= target:
            hi = mid
        else:
            lo = mid + 1
    return lo


def solve_area_for_point_probability(
    profile: HeterogeneousProfile,
    n: int,
    theta: float,
    target: float,
    condition: Condition = "necessary",
    scheme: Scheme = "uniform",
    tolerance: float = 1e-6,
) -> float:
    """Smallest weighted sensing area reaching ``target`` at fixed ``n``.

    The profile's group structure (fractions, angles, area ratios) is
    preserved; only the common radius scale moves.  Returns the
    weighted sensing area; build the concrete profile with
    :meth:`HeterogeneousProfile.scaled_to_weighted_area`.
    """
    if not (0.0 < target < 1.0):
        raise InvalidParameterError(f"target must be in (0, 1), got {target!r}")
    if tolerance <= 0:
        raise InvalidParameterError(f"tolerance must be positive, got {tolerance!r}")

    def probability_at(area: float) -> float:
        scaled = profile.scaled_to_weighted_area(area)
        return point_success_probability(scaled, n, theta, condition, scheme)

    lo, hi = 1e-9, 1e-6
    while probability_at(hi) < target:
        hi *= 2.0
        if hi > 16.0:
            raise ConvergenceError(
                f"no sensible area reaches target {target} at n={n}"
            )
    while hi - lo > tolerance * hi:
        mid = math.sqrt(lo * hi)
        if probability_at(mid) >= target:
            hi = mid
        else:
            lo = mid
    return hi


@dataclass(frozen=True)
class DesignReport:
    """Bill of requirements for a coverage scenario.

    Attributes
    ----------
    theta, n:
        The scenario.
    csa_necessary, csa_sufficient:
        Theorem 1/2 thresholds at ``n``.
    current_weighted_area, csa_margin:
        The profile's weighted sensing area, and its ratio to the
        sufficient CSA.
    required_area:
        Smallest weighted sensing area reaching the target per-point
        probability (eq. (2)).
    required_scale:
        Radius multiplier turning the current profile into the
        required one.
    minimum_n_with_current_cameras:
        Fewest sensors of the current profile reaching the target.
    """

    theta: float
    n: int
    csa_necessary: float
    csa_sufficient: float
    current_weighted_area: float
    csa_margin: float
    required_area: float
    required_scale: float
    minimum_n_with_current_cameras: int


def design_report(
    profile: HeterogeneousProfile,
    n: int,
    theta: float,
    target: float = 0.99,
    condition: Condition = "necessary",
) -> DesignReport:
    """Everything a network designer asks of the theory, in one call."""
    current = profile.weighted_sensing_area
    required_area = solve_area_for_point_probability(
        profile, n, theta, target, condition
    )
    try:
        min_n = solve_n_for_point_probability(profile, theta, target, condition)
    except ConvergenceError:
        min_n = -1
    suf = csa_sufficient(n, theta)
    return DesignReport(
        theta=theta,
        n=n,
        csa_necessary=csa_necessary(n, theta),
        csa_sufficient=suf,
        current_weighted_area=current,
        csa_margin=current / suf,
        required_area=required_area,
        required_scale=math.sqrt(required_area / current),
        minimum_n_with_current_cameras=min_n,
    )
