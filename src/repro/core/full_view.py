"""Exact full-view coverage (Definition 1).

A point ``P`` is *full-view covered* with effective angle
``theta in (0, pi]`` when every facing direction ``d`` is *safe*: some
sensor ``S`` covers ``P`` with ``angle(d, PS) <= theta``.

Let ``psi_1 .. psi_k`` be the viewed directions (headings ``P -> S``)
of the sensors covering ``P``.  The set of safe facing directions is
the union of arcs ``[psi_i - theta, psi_i + theta]``, so ``P`` is
full-view covered **iff** that union is the whole circle — equivalently
iff the largest circular gap between consecutive viewed directions is
at most ``2 * theta``.  The paper uses this fact implicitly throughout
(it is what makes a sensor-free ``2*theta`` sector fatal); here it is
the primary, exact test, against which the paper's necessary and
sufficient sector conditions are sandwiched
(``sufficient => exact => necessary``, property-tested).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import full_view_mask
from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI, normalize_angle, validate_effective_angle
from repro.geometry.intervals import AngularIntervalSet, max_circular_gap
from repro.sensors.fleet import SensorFleet

__all__ = [
    "FullViewDiagnostics",
    "Point",
    "diagnose_point",
    "full_view_coverage_fraction",
    "is_full_view_covered",
    "minimum_sensors_for_full_view",
    "point_is_full_view_covered",
    "safe_direction_set",
    "validate_effective_angle",
]

Point = Tuple[float, float]


def is_full_view_covered(viewed_directions: Sequence[float], theta: float) -> bool:
    """Exact full-view test from viewed directions alone.

    Parameters
    ----------
    viewed_directions:
        Headings ``P -> S`` of the sensors covering the point.
    theta:
        Effective angle in ``(0, pi]``.

    Returns
    -------
    ``True`` iff the maximum circular gap between consecutive viewed
    directions is at most ``2 * theta`` (and the point is covered by at
    least one sensor).
    """
    theta = validate_effective_angle(theta)
    directions = np.asarray(viewed_directions, dtype=float).ravel()
    if directions.size == 0:
        return False
    return max_circular_gap(directions) <= 2.0 * theta + 1e-12


def safe_direction_set(
    viewed_directions: Sequence[float], theta: float
) -> AngularIntervalSet:
    """The set of safe facing directions as an angular interval set.

    This is the union of arcs of half-width ``theta`` around each
    viewed direction — full-view coverage is exactly this set covering
    the circle.
    """
    theta = validate_effective_angle(theta)
    return AngularIntervalSet.from_directions(
        np.asarray(viewed_directions, dtype=float).ravel(), theta
    )


def point_is_full_view_covered(
    fleet: SensorFleet, point: Point, theta: float
) -> bool:
    """Exact full-view test for a point against a deployed fleet."""
    return is_full_view_covered(fleet.covering_directions(point), theta)


@dataclass(frozen=True)
class FullViewDiagnostics:
    """Per-point diagnostics of the full-view criterion.

    Attributes
    ----------
    covered:
        Whether the point is full-view covered (exact test).
    num_covering_sensors:
        Size of the covering set.
    max_gap:
        Largest circular gap between consecutive viewed directions
        (``2*pi`` when fewer than two sensors cover the point).
    safe_measure:
        Angular measure of the safe facing-direction set, in
        ``[0, 2*pi]``.
    worst_direction:
        A facing direction maximally far from every viewed direction
        (midpoint of the widest gap), or ``None`` when no sensor covers
        the point.  When ``covered`` is false this is a concrete
        unsafe direction — a witness to the failure.
    slack:
        ``2*theta - max_gap``: positive slack means the point tolerates
        that much additional gap before losing full-view coverage.
    """

    covered: bool
    num_covering_sensors: int
    max_gap: float
    safe_measure: float
    worst_direction: Optional[float]
    slack: float


def diagnose_point(
    fleet: SensorFleet, point: Point, theta: float
) -> FullViewDiagnostics:
    """Full diagnostics of a point's full-view status against a fleet."""
    theta = validate_effective_angle(theta)
    directions = fleet.covering_directions(point)
    k = int(directions.size)
    if k == 0:
        return FullViewDiagnostics(
            covered=False,
            num_covering_sensors=0,
            max_gap=TWO_PI,
            safe_measure=0.0,
            worst_direction=None,
            slack=2.0 * theta - TWO_PI,
        )
    gap = max_circular_gap(directions)
    safe = safe_direction_set(directions, theta)
    ordered = np.sort(normalize_angle(directions))
    if k == 1:
        worst = normalize_angle(float(ordered[0]) + math.pi)
    else:
        diffs = np.diff(ordered)
        wrap = TWO_PI - (ordered[-1] - ordered[0])
        if wrap >= diffs.max():
            worst = normalize_angle(float(ordered[-1]) + 0.5 * wrap)
        else:
            widest = int(np.argmax(diffs))
            worst = normalize_angle(float(ordered[widest]) + 0.5 * float(diffs[widest]))
    return FullViewDiagnostics(
        covered=gap <= 2.0 * theta + 1e-12,
        num_covering_sensors=k,
        max_gap=float(gap),
        safe_measure=safe.measure(),
        worst_direction=float(worst),
        slack=2.0 * theta - float(gap),
    )


def full_view_coverage_fraction(
    fleet: SensorFleet,
    points: np.ndarray,
    theta: float,
    use_index: bool = True,
) -> float:
    """Fraction of ``points`` that are full-view covered (exact test).

    When edge effects are neglected this estimates the expected covered
    *area* fraction, the interpretation Section V gives to the per-point
    probabilities.

    Evaluation is vectorised through
    :func:`repro.core.batch.full_view_mask` (bit-identical to the
    scalar gap test, property-tested) and never mutates ``fleet``; the
    ``use_index`` flag is accepted for API compatibility but unused, as
    the batch kernel does not consult the spatial index.
    """
    del use_index  # accepted for compatibility; batch path needs no index
    theta = validate_effective_angle(theta)
    pts = np.asarray(points, dtype=float).reshape(-1, 2)
    if pts.shape[0] == 0:
        raise InvalidParameterError("need at least one evaluation point")
    return float(full_view_mask(fleet, pts, theta).mean())


def minimum_sensors_for_full_view(theta: float) -> int:
    """Fewest sensors that can full-view cover a point: ``ceil(pi/theta)``.

    Section III: the necessary condition "indicates that at least
    ``ceil(pi/theta)`` sensors are needed to achieve full view coverage
    of a point" — achieved by spacing viewed directions evenly.
    """
    theta = validate_effective_angle(theta)
    return math.ceil(math.pi / theta - 1e-12)
