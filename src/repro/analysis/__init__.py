"""Network-level analyses beyond coverage.

- :mod:`repro.analysis.connectivity` — communication-graph
  connectivity of a deployed fleet: coverage without connectivity
  cannot report what it captures (the concern the paper's introduction
  cites alongside multiple coverage).
"""

from repro.analysis.connectivity import (
    communication_graph,
    critical_communication_radius,
    is_connected,
    largest_component_fraction,
)

__all__ = [
    "communication_graph",
    "critical_communication_radius",
    "is_connected",
    "largest_component_fraction",
]
