"""Communication connectivity of deployed camera fleets.

A camera network must move its captures to a sink, so deployments are
judged on *connectivity* as well as coverage (the pairing the paper's
introduction cites).  Sensors communicate within a disk of radius
``R_c`` (on the torus, like sensing); the communication graph has an
edge between every pair within ``R_c``.

Key quantity: the **critical communication radius** — the smallest
``R_c`` making the graph connected.  It equals the longest edge of the
Euclidean minimum spanning tree (bottleneck-shortest-path optimality of
MSTs), computed here with a union-find Kruskal sweep over the sorted
pairwise distances; for uniform deployments it scales as
``Theta(sqrt(log n / n))`` (Penrose), which the CONN experiment
verifies, along with the folk theorem that ``R_c >= 2 r`` makes
coverage-grade fleets connected.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

from repro.errors import InvalidParameterError
from repro.sensors.fleet import SensorFleet

__all__ = [
    "communication_graph",
    "connectivity_scaling_constant",
    "critical_communication_radius",
    "is_connected",
    "largest_component_fraction",
]


def _pairwise_distances(fleet: SensorFleet) -> np.ndarray:
    """Condensed upper-triangle pairwise (toroidal) distances."""
    positions = fleet.positions
    n = positions.shape[0]
    if n < 2:
        return np.empty(0)
    delta = fleet.region.pairwise_displacements(positions, positions)
    dists = np.hypot(delta[..., 0], delta[..., 1])
    iu = np.triu_indices(n, k=1)
    return dists[iu]


def communication_graph(fleet: SensorFleet, radius: float) -> nx.Graph:
    """The graph with an edge between every sensor pair within ``radius``.

    Quadratic in fleet size; intended for the fleet scales the paper
    studies (up to a few thousand sensors).
    """
    if radius <= 0:
        raise InvalidParameterError(f"radius must be positive, got {radius!r}")
    n = len(fleet)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    if n < 2:
        return graph
    positions = fleet.positions
    delta = fleet.region.pairwise_displacements(positions, positions)
    dists = np.hypot(delta[..., 0], delta[..., 1])
    ii, jj = np.nonzero(np.triu(dists <= radius, k=1))
    graph.add_edges_from(zip(ii.tolist(), jj.tolist()))
    return graph


def is_connected(fleet: SensorFleet, radius: float) -> bool:
    """Whether the communication graph at ``radius`` is connected.

    An empty fleet is vacuously connected; a single sensor trivially
    so.
    """
    if len(fleet) <= 1:
        return True
    return nx.is_connected(communication_graph(fleet, radius))


def largest_component_fraction(fleet: SensorFleet, radius: float) -> float:
    """Fraction of sensors in the largest communication component."""
    n = len(fleet)
    if n == 0:
        return 1.0
    graph = communication_graph(fleet, radius)
    return max(len(c) for c in nx.connected_components(graph)) / n


class _UnionFind:
    """Minimal union-find for the Kruskal bottleneck sweep."""

    __slots__ = ("parent", "rank", "components")

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.rank = [0] * n
        self.components = n

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self.components -= 1
        return True


def critical_communication_radius(fleet: SensorFleet) -> float:
    """Smallest radius making the communication graph connected.

    Equals the largest edge of the minimum spanning tree: Kruskal over
    the sorted pairwise distances, returning the weight of the edge
    that merges the last two components.  ``0`` for fleets of size
    0 or 1.
    """
    n = len(fleet)
    if n <= 1:
        return 0.0
    condensed = _pairwise_distances(fleet)
    order = np.argsort(condensed)
    iu_i, iu_j = np.triu_indices(n, k=1)
    uf = _UnionFind(n)
    for k in order:
        if uf.union(int(iu_i[k]), int(iu_j[k])):
            if uf.components == 1:
                return float(condensed[k])
    raise AssertionError("MST sweep failed to connect")  # pragma: no cover


def connectivity_scaling_constant(fleet: SensorFleet) -> float:
    """``R_crit / sqrt(log n / (pi n))`` — Penrose's normalisation.

    For uniform deployments this ratio converges (in probability) to 1
    as ``n`` grows; the CONN experiment tracks it across fleet sizes.
    """
    n = len(fleet)
    if n < 2:
        raise InvalidParameterError("need at least 2 sensors")
    return critical_communication_radius(fleet) / math.sqrt(
        math.log(n) / (math.pi * n)
    )
