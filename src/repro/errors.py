"""Exception hierarchy for the ``repro`` package.

All exceptions raised deliberately by this library derive from
:class:`FullViewError`, so callers can catch library failures without
also swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ChaosError",
    "CheckpointError",
    "ConvergenceError",
    "DeploymentError",
    "ExperimentError",
    "FullViewError",
    "GridIndexError",
    "InvalidParameterError",
    "InvalidProfileError",
    "LintError",
    "ObservabilityError",
    "PayloadError",
    "SchemaError",
    "ServiceError",
]


class FullViewError(Exception):
    """Base class for every error raised by this library."""


class InvalidParameterError(FullViewError, ValueError):
    """A model parameter is outside its documented domain.

    Raised, for example, for a non-positive sensing radius, an angle of
    view outside ``(0, 2*pi]``, or an effective angle outside ``(0, pi]``.
    """


class InvalidProfileError(FullViewError, ValueError):
    """A heterogeneous sensor profile violates its invariants.

    The paper (Section II-A) requires group fractions ``c_y`` with
    ``0 < c_y <= 1`` and ``sum(c_y) == 1``, and that no two groups share
    both radius and angle of view.
    """


class DeploymentError(FullViewError, RuntimeError):
    """A deployment scheme could not produce a valid sensor placement."""


class ConvergenceError(FullViewError, RuntimeError):
    """An iterative numerical routine failed to converge."""


class ExperimentError(FullViewError, RuntimeError):
    """An experiment driver was misconfigured or failed to run."""


class CheckpointError(FullViewError, RuntimeError):
    """A Monte-Carlo checkpoint is missing, corrupt or incompatible.

    Raised when resuming a sweep whose checkpoint does not match the
    requested configuration (different seed or trial count), or whose
    JSON payload cannot be parsed.
    """


class ChaosError(FullViewError, RuntimeError):
    """A fault injected on purpose by the chaos harness.

    Raised from inside ``_run_chunk`` when an active
    :class:`repro.simulation.faults.ChaosPolicy` decides (by seed) that
    this chunk attempt crashes.  Distinct from organic worker errors so
    tests and retry accounting can tell injected faults from real bugs.
    """


class GridIndexError(FullViewError, IndexError):
    """A dense-grid cell index is outside the grid.

    Keeps :class:`IndexError` lineage so sequence-protocol callers that
    catch ``IndexError`` keep working.
    """


class LintError(FullViewError, RuntimeError):
    """The ``fvlint`` static-analysis pass was misconfigured.

    Raised for unknown rule codes, unreadable lint targets, and corrupt
    baseline files.
    """


class ObservabilityError(FullViewError, RuntimeError):
    """A telemetry artifact is missing, corrupt or unwritable.

    Raised when a trace JSONL file cannot be parsed into a run report,
    or when an obs sink cannot be opened for writing.
    """


class PayloadError(FullViewError, RuntimeError):
    """A shared-memory payload segment is missing or corrupt.

    Raised when a worker resolves a task registration whose segment
    bytes no longer match the content digest in its handle — the
    shared-memory analogue of a truncated checkpoint.
    """


class SchemaError(FullViewError, ValueError):
    """A wire body violates the ``fullview-api-v1`` contract.

    Raised by :mod:`repro.api.schemas` for unknown fields, missing
    required fields, wrongly-typed values or an unsupported ``schema``
    tag; the coverage service maps it to one HTTP 400 response shape.
    """


class ServiceError(FullViewError, RuntimeError):
    """The coverage service could not accept or complete a request.

    Raised for server-side failures that are not the client's fault:
    a saturated work queue (mapped to HTTP 503), a shutdown in
    progress, or an unusable cache directory.
    """
