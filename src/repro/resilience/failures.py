"""Seeded failure models: deterministic ``SensorFleet -> SensorFleet`` maps.

The paper motivates full-view k-coverage as *fault tolerance* (Section
VII-B) but never models the faults.  This module supplies the missing
layer: each :class:`FailureModel` is a pure transform of a deployed
fleet driven by an explicit :class:`numpy.random.Generator`, so a
degraded fleet is exactly reproducible from (fleet, seed) — the same
contract deployment schemes obey.

Four canonical models cover the failure literature's axes:

- :class:`BernoulliFailure` — independent random deaths (battery loss,
  lightning strikes of individual nodes);
- :class:`DiskBlackout` — spatially-correlated loss: every sensor
  inside a random disk dies at once (localized EMP, flood, landslide);
- :class:`OrientationDrift` — sensors survive but their headings pick
  up wrapped-normal noise (wind, mounting creep);
- :class:`RadiusDegradation` — sensing radii shrink multiplicatively
  (lens fouling, battery-driven power reduction), with an optional
  death floor below which a sensor is removed.

Models compose into a :class:`FailureSchedule`, the per-epoch transform
the lifetime simulation (:mod:`repro.resilience.lifetime`) steps.
Every parameter is validated with :class:`InvalidParameterError` at
construction time, never at apply time.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.sensors.fleet import SensorFleet

__all__ = [
    "BernoulliFailure",
    "DiskBlackout",
    "FailureModel",
    "FailureSchedule",
    "OrientationDrift",
    "RadiusDegradation",
]


def _is_finite_number(value) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


class FailureModel(ABC):
    """A deterministic, seeded degradation of a deployed fleet.

    Implementations must consume randomness only from the passed
    generator and must consume the *same number of draws regardless of
    the verdicts*, so composed schedules stay reproducible when applied
    to fleets of equal size.
    """

    @abstractmethod
    def apply(self, fleet: SensorFleet, rng: np.random.Generator) -> SensorFleet:
        """The degraded fleet (a new object; the input is untouched)."""

    def __call__(self, fleet: SensorFleet, rng: np.random.Generator) -> SensorFleet:
        return self.apply(fleet, rng)

    def then(self, other: "FailureModel") -> "FailureSchedule":
        """This model followed by ``other`` (schedule composition)."""
        return FailureSchedule((self, other))


@dataclass(frozen=True)
class BernoulliFailure(FailureModel):
    """Each sensor independently dies with probability ``p``.

    Thinning a uniform deployment is again a uniform deployment of the
    survivor count, so eq. (2) evaluated at ``n * (1 - p)`` predicts the
    degraded coverage — the quantitative check the ROBUST experiment
    runs.
    """

    p: float

    def __post_init__(self) -> None:
        if not _is_finite_number(self.p) or not (0.0 <= self.p <= 1.0):
            raise InvalidParameterError(
                f"failure probability must be in [0, 1], got {self.p!r}"
            )

    def apply(self, fleet: SensorFleet, rng: np.random.Generator) -> SensorFleet:
        survivors = np.flatnonzero(rng.random(len(fleet)) >= self.p)
        return fleet.subset(survivors)


@dataclass(frozen=True)
class DiskBlackout(FailureModel):
    """Every sensor within ``radius`` of a random center dies.

    ``count`` independent blackout centers are drawn uniformly over the
    region per application.  Distances use the fleet region's metric,
    so blackouts wrap on the torus like sensing does.
    """

    radius: float
    count: int = 1

    def __post_init__(self) -> None:
        if not _is_finite_number(self.radius) or self.radius <= 0.0:
            raise InvalidParameterError(
                f"blackout radius must be positive and finite, got {self.radius!r}"
            )
        if not isinstance(self.count, int) or self.count < 1:
            raise InvalidParameterError(
                f"blackout count must be an integer >= 1, got {self.count!r}"
            )

    def apply(self, fleet: SensorFleet, rng: np.random.Generator) -> SensorFleet:
        side = fleet.region.side
        centers = rng.uniform(0.0, side, size=(self.count, 2))
        if len(fleet) == 0:
            return fleet.subset(np.empty(0, dtype=np.intp))
        alive = np.ones(len(fleet), dtype=bool)
        for cx, cy in centers:
            delta = fleet.region.displacements((float(cx), float(cy)), fleet.positions)
            dist_sq = delta[:, 0] ** 2 + delta[:, 1] ** 2
            alive &= dist_sq > self.radius**2
        return fleet.subset(np.flatnonzero(alive))


@dataclass(frozen=True)
class OrientationDrift(FailureModel):
    """Headings pick up wrapped-normal noise of scale ``sigma``.

    For fleets with i.i.d. uniform orientations this is
    distribution-invariant (uniform plus independent noise is uniform
    on the circle), so coverage *statistics* survive arbitrary drift —
    a property the ROBUST experiment verifies.  For planned/aimed
    fleets drift is destructive.
    """

    sigma: float

    def __post_init__(self) -> None:
        if not _is_finite_number(self.sigma) or self.sigma < 0.0:
            raise InvalidParameterError(
                f"drift sigma must be >= 0 and finite, got {self.sigma!r}"
            )

    def apply(self, fleet: SensorFleet, rng: np.random.Generator) -> SensorFleet:
        noise = rng.normal(0.0, self.sigma, size=len(fleet))
        if len(fleet) == 0:
            return fleet.subset(np.empty(0, dtype=np.intp))
        # SensorFleet normalizes headings, wrapping the normal noise.
        return fleet.replace(orientations=fleet.orientations + noise)


@dataclass(frozen=True)
class RadiusDegradation(FailureModel):
    """Sensing radii shrink by ``factor``; sensors below ``floor`` die.

    A fleet degraded by factor ``f`` is statistically a fresh fleet
    whose weighted sensing area scaled by ``f**2`` — the survivor-theory
    check the ROBUST experiment runs.  With ``floor > 0`` the model
    also kills exhausted sensors outright.
    """

    factor: float
    floor: float = 0.0

    def __post_init__(self) -> None:
        if not _is_finite_number(self.factor) or not (0.0 < self.factor <= 1.0):
            raise InvalidParameterError(
                f"degradation factor must be in (0, 1], got {self.factor!r}"
            )
        if not _is_finite_number(self.floor) or self.floor < 0.0:
            raise InvalidParameterError(
                f"radius floor must be >= 0 and finite, got {self.floor!r}"
            )

    def apply(self, fleet: SensorFleet, rng: np.random.Generator) -> SensorFleet:
        if len(fleet) == 0:
            return fleet.subset(np.empty(0, dtype=np.intp))
        shrunk = fleet.radii * self.factor
        if self.floor > 0.0:
            alive = np.flatnonzero(shrunk > self.floor)
            return fleet.subset(alive).replace(radii=shrunk[alive])
        return fleet.replace(radii=shrunk)


@dataclass(frozen=True)
class FailureSchedule(FailureModel):
    """An ordered composition of failure models, itself a model.

    Applying a schedule applies each member in order on the running
    fleet; an empty schedule is the identity.  Schedules are what the
    lifetime simulation applies once per epoch.
    """

    models: Tuple[FailureModel, ...] = ()

    def __init__(self, models: Iterable[FailureModel] = ()) -> None:
        models = tuple(models)
        for model in models:
            if not isinstance(model, FailureModel):
                raise InvalidParameterError(
                    f"schedule members must be FailureModel instances, got {model!r}"
                )
        object.__setattr__(self, "models", models)

    def __len__(self) -> int:
        return len(self.models)

    def apply(self, fleet: SensorFleet, rng: np.random.Generator) -> SensorFleet:
        for model in self.models:
            fleet = model.apply(fleet, rng)
        return fleet

    def then(self, other: FailureModel) -> "FailureSchedule":
        """A new schedule with ``other`` appended (flattened)."""
        extra = other.models if isinstance(other, FailureSchedule) else (other,)
        return FailureSchedule(self.models + extra)
