"""Resilience: failure models and network-lifetime simulation.

The paper motivates full-view k-coverage as fault tolerance (Section
VII-B); this package supplies the machinery that argument needs:

- :mod:`repro.resilience.failures` — seeded, deterministic fleet
  degradations (independent deaths, correlated disk blackouts,
  orientation drift, radius degradation), composable into per-epoch
  :class:`FailureSchedule` transforms.
- :mod:`repro.resilience.lifetime` — step deployments through failure
  epochs and record when the full-view condition first breaks on the
  dense grid, yielding lifetime distributions, survival curves and
  coverage-vs-time curves.

The checkpointed, fault-isolated sweep executor these feed lives in
:mod:`repro.simulation.runner`.
"""

from repro.resilience.failures import (
    BernoulliFailure,
    DiskBlackout,
    FailureModel,
    FailureSchedule,
    OrientationDrift,
    RadiusDegradation,
)
from repro.resilience.lifetime import (
    LifetimeDistribution,
    LifetimeTrace,
    lifetime_distribution,
    make_lifetime_trial,
    simulate_lifetime,
)

__all__ = [
    "BernoulliFailure",
    "DiskBlackout",
    "FailureModel",
    "FailureSchedule",
    "LifetimeDistribution",
    "LifetimeTrace",
    "OrientationDrift",
    "RadiusDegradation",
    "lifetime_distribution",
    "make_lifetime_trial",
    "simulate_lifetime",
]
