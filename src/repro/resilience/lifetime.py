"""Network lifetime: coverage *over time* under progressive failures.

The paper's fault-tolerance argument (Section VII-B) is static: deploy
with k-fold slack and failures are absorbed.  This module makes the
claim dynamic.  A deployed fleet is stepped through discrete epochs; at
each epoch a :class:`~repro.resilience.failures.FailureSchedule` is
applied and the chosen full-view condition is re-evaluated on the dense
grid.  The *lifetime* of a deployment is the first epoch at which the
condition breaks somewhere on the grid; sweeping deployments yields
lifetime distributions and coverage-vs-time curves, the quantities that
price provisioning (deploying ``q`` times the sufficient CSA) in epochs
of guaranteed operation.

Related work runs on exactly this machinery: graceful degradation under
partial coverage (Tripathi et al.) is the coverage-fraction curve, and
coverage maintenance in mobile/failing camera networks is the survival
curve.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.batch import condition_mask
from repro.deployment.base import DeploymentScheme
from repro.deployment.uniform import UniformDeployment
from repro.errors import InvalidParameterError
from repro.geometry.angles import validate_effective_angle
from repro.geometry.grid import DenseGrid
from repro.obs.events import EpochAdvanced, active_event_log
from repro.obs.progress import active_progress
from repro.obs.trace import span
from repro.resilience.failures import FailureModel
from repro.sensors.fleet import SensorFleet
from repro.sensors.model import HeterogeneousProfile
from repro.simulation.engine import MonteCarloConfig, execute_trials

__all__ = [
    "LifetimeDistribution",
    "LifetimeTask",
    "LifetimeTrace",
    "LifetimeValueTask",
    "lifetime_distribution",
    "make_lifetime_trial",
    "simulate_lifetime",
]

#: Conditions the lifetime clock can be tied to.
_CONDITIONS = ("necessary", "exact", "sufficient")


def _validate_condition(condition: str) -> str:
    if condition not in _CONDITIONS:
        raise InvalidParameterError(
            f"condition must be one of {_CONDITIONS}, got {condition!r}"
        )
    return condition


@dataclass(frozen=True)
class LifetimeTrace:
    """One deployment's trajectory through the failure epochs.

    Attributes
    ----------
    break_epoch:
        First epoch (0 = as deployed, before any failures) at which the
        condition failed somewhere on the evaluation points, or ``None``
        if it held through every simulated epoch (right-censored).
    epochs:
        Number of failure epochs simulated.
    coverage_fractions:
        Fraction of evaluation points meeting the condition at epochs
        ``0..k`` (``k <= epochs``; shorter when the simulation stopped
        at the break).
    alive_counts:
        Fleet size at the same epochs.
    """

    break_epoch: Optional[int]
    epochs: int
    coverage_fractions: Tuple[float, ...]
    alive_counts: Tuple[int, ...]

    @property
    def survived(self) -> bool:
        """Whether the condition held through every simulated epoch."""
        return self.break_epoch is None

    @property
    def lifetime(self) -> int:
        """Epochs of intact operation (censored at ``epochs``).

        A deployment broken as deployed has lifetime 0; one that first
        breaks after the ``t``-th failure epoch has lifetime ``t``; one
        that never breaks counts the full horizon ``epochs``.
        """
        return self.epochs if self.break_epoch is None else self.break_epoch


def simulate_lifetime(
    fleet: SensorFleet,
    schedule: FailureModel,
    theta: float,
    *,
    epochs: int,
    rng: np.random.Generator,
    condition: str = "necessary",
    points: Optional[np.ndarray] = None,
    stop_at_break: bool = False,
) -> LifetimeTrace:
    """Step one deployed fleet through failure epochs.

    ``points`` are the evaluation points (default: the paper's dense
    grid for the initial fleet size).  With ``stop_at_break`` the
    simulation ends at the first broken epoch (cheaper when only the
    lifetime is needed); otherwise it runs the full horizon so
    coverage-vs-time curves cover every epoch.
    """
    theta = validate_effective_angle(theta)
    condition = _validate_condition(condition)
    if not isinstance(schedule, FailureModel):
        raise InvalidParameterError(
            f"schedule must be a FailureModel, got {schedule!r}"
        )
    if epochs < 1:
        raise InvalidParameterError(f"epochs must be >= 1, got {epochs!r}")
    if points is None:
        points = DenseGrid.for_sensor_count(max(1, len(fleet)), fleet.region).points
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    if points.shape[0] == 0:
        raise InvalidParameterError("need at least one evaluation point")

    def evaluate(current: SensorFleet) -> float:
        if len(current) == 0:
            return 0.0
        return float(condition_mask(current, points, theta, condition).mean())

    fractions = [evaluate(fleet)]
    alive = [len(fleet)]
    break_epoch: Optional[int] = None if fractions[0] >= 1.0 else 0
    log = active_event_log()
    progress = active_progress()
    for epoch in range(1, epochs + 1):
        if stop_at_break and break_epoch is not None:
            break
        fleet = schedule.apply(fleet, rng)
        fraction = evaluate(fleet)
        fractions.append(fraction)
        alive.append(len(fleet))
        if break_epoch is None and fraction < 1.0:
            break_epoch = epoch
        # Telemetry only (no-op without an obs context; worker
        # processes never have one, so parallel sweeps stay silent
        # here and report via chunk traces instead).
        if log is not None:
            log.emit(
                EpochAdvanced(epoch=epoch, alive=len(fleet), coverage=fraction)
            )
        if progress is not None:
            progress.note("epochs")
    return LifetimeTrace(
        break_epoch=break_epoch,
        epochs=epochs,
        coverage_fractions=tuple(fractions),
        alive_counts=tuple(alive),
    )


@dataclass(frozen=True)
class LifetimeDistribution:
    """Lifetimes of many independent deployments under one schedule.

    Attributes
    ----------
    lifetimes:
        Per-trial lifetimes (censored values equal ``epochs``).
    censored:
        Whether each trial survived the whole horizon.
    epochs:
        The simulated horizon.
    mean_coverage_by_epoch:
        Mean coverage fraction at epochs ``0..epochs`` across trials
        (empty when traces stopped at the break).
    """

    lifetimes: Tuple[int, ...]
    censored: Tuple[bool, ...]
    epochs: int
    mean_coverage_by_epoch: Tuple[float, ...] = ()

    @property
    def trials(self) -> int:
        return len(self.lifetimes)

    @property
    def mean_lifetime(self) -> float:
        return float(np.mean(self.lifetimes))

    @property
    def median_lifetime(self) -> float:
        return float(np.median(self.lifetimes))

    @property
    def censored_fraction(self) -> float:
        return sum(self.censored) / max(1, self.trials)

    def survival_curve(self) -> Tuple[float, ...]:
        """``S(t)``: fraction of deployments intact after epoch ``t``.

        Index ``t`` runs ``0..epochs``; censored trials count as intact
        through the horizon.  Nonincreasing by construction.
        """
        lifetimes = np.asarray(self.lifetimes)
        censored = np.asarray(self.censored)
        return tuple(
            float(np.mean((lifetimes > t) | ((lifetimes >= t) & censored)))
            for t in range(self.epochs + 1)
        )


@dataclass(frozen=True)
class LifetimeTask:
    """One lifetime trial: deploy, step the failure epochs, emit a trace.

    A frozen, picklable trial task for the shared engine
    (:mod:`repro.simulation.engine`): the per-trial generator drives the
    deployment, the optional grid subsample and the failure schedule —
    in that order, matching the historical serial loop, so lifetime
    sweeps are bit-identical across executors.  ``grid`` defaults to
    the paper's dense grid for ``n`` sensors (precompute it once via
    :func:`lifetime_distribution` / :func:`make_lifetime_trial` to
    avoid rebuilding per trial).
    """

    profile: HeterogeneousProfile
    n: int
    theta: float
    schedule: FailureModel
    epochs: int
    scheme: DeploymentScheme
    condition: str = "necessary"
    grid: Optional[DenseGrid] = None
    max_grid_points: Optional[int] = None
    track_curves: bool = False

    def __post_init__(self) -> None:
        validate_effective_angle(self.theta)
        _validate_condition(self.condition)
        if self.epochs < 1:
            raise InvalidParameterError(f"epochs must be >= 1, got {self.epochs!r}")

    def __call__(self, trial: int, rng: np.random.Generator) -> LifetimeTrace:
        """Run one deployment through the epochs (trial index unused)."""
        del trial
        with span("deploy"):
            fleet = self.scheme.deploy(self.profile, self.n, rng)
        grid = (
            self.grid
            if self.grid is not None
            else DenseGrid.for_sensor_count(self.n, self.scheme.region)
        )
        if self.max_grid_points is not None and self.max_grid_points < len(grid):
            points = grid.sample(self.max_grid_points, rng)
        else:
            points = grid.points
        return simulate_lifetime(
            fleet,
            self.schedule,
            self.theta,
            epochs=self.epochs,
            rng=rng,
            condition=self.condition,
            points=points,
            stop_at_break=not self.track_curves,
        )


@dataclass(frozen=True)
class LifetimeValueTask:
    """Scalar wrapper around :class:`LifetimeTask` for the runner.

    :func:`repro.simulation.runner.run_resilient_trials` records
    numeric outcomes, so this wrapper reduces each trace to its
    lifetime.  Frozen and picklable like the task it wraps.
    """

    task: LifetimeTask

    def __call__(self, trial: int, rng: np.random.Generator) -> float:
        """The trial's lifetime in epochs (censored at the horizon)."""
        return float(self.task(trial, rng).lifetime)


def lifetime_distribution(
    profile: HeterogeneousProfile,
    n: int,
    theta: float,
    schedule: FailureModel,
    config: MonteCarloConfig,
    *,
    epochs: int,
    condition: str = "necessary",
    scheme: Optional[DeploymentScheme] = None,
    max_grid_points: Optional[int] = None,
    track_curves: bool = False,
    isolate: bool = False,
) -> LifetimeDistribution:
    """Monte-Carlo lifetime distribution over fresh deployments.

    Each trial deploys ``n`` sensors from ``profile``, then steps the
    failure schedule with the *same* trial generator, so the whole
    trajectory is reproducible from the config seed.  The dense grid is
    subsampled per trial to ``max_grid_points`` when set.  Trials run
    on the shared engine, so ``config.workers`` parallelises the sweep
    with bit-identical results.

    With ``isolate`` a failing (or quarantined) trial is dropped from
    the distribution with a warning instead of killing the sweep — the
    long-horizon regime where a single poisoned trial must not cost
    hours of completed epochs.
    """
    scheme = scheme or UniformDeployment()
    task = LifetimeTask(
        profile=profile,
        n=n,
        theta=validate_effective_angle(theta),
        schedule=schedule,
        epochs=epochs,
        scheme=scheme,
        condition=_validate_condition(condition),
        grid=DenseGrid.for_sensor_count(n, scheme.region),
        max_grid_points=max_grid_points,
        track_curves=track_curves,
    )
    outcomes = execute_trials(task, config, isolate=isolate)
    if isolate:
        lost = [outcome for outcome in outcomes if not outcome.ok]
        if lost:
            warnings.warn(
                f"lifetime sweep lost {len(lost)} of {len(outcomes)} trials "
                f"to isolated failures (first: trial {lost[0].trial}: "
                f"{lost[0].error}); the distribution covers the survivors",
                RuntimeWarning,
                stacklevel=2,
            )
        outcomes = [outcome for outcome in outcomes if outcome.ok]
    traces = [outcome.value for outcome in outcomes]
    curves = [t.coverage_fractions for t in traces] if track_curves else []
    mean_curve: Tuple[float, ...] = ()
    if track_curves and curves:
        mean_curve = tuple(float(x) for x in np.mean(np.asarray(curves), axis=0))
    return LifetimeDistribution(
        lifetimes=tuple(t.lifetime for t in traces),
        censored=tuple(t.survived for t in traces),
        epochs=epochs,
        mean_coverage_by_epoch=mean_curve,
    )


def make_lifetime_trial(
    profile: HeterogeneousProfile,
    n: int,
    theta: float,
    schedule: FailureModel,
    *,
    epochs: int,
    condition: str = "necessary",
    scheme: Optional[DeploymentScheme] = None,
    max_grid_points: Optional[int] = None,
) -> Callable[[int, np.random.Generator], float]:
    """A per-trial lifetime function for the resilient runner.

    Returns a picklable ``trial_fn(trial, rng) -> lifetime`` suitable
    for :func:`repro.simulation.runner.run_resilient_trials`, so long
    lifetime sweeps inherit checkpoint/resume, fault isolation *and*
    process-parallel execution.
    """
    scheme = scheme or UniformDeployment()
    return LifetimeValueTask(
        task=LifetimeTask(
            profile=profile,
            n=n,
            theta=validate_effective_angle(theta),
            schedule=schedule,
            epochs=epochs,
            scheme=scheme,
            condition=_validate_condition(condition),
            grid=DenseGrid.for_sensor_count(n, scheme.region),
            max_grid_points=max_grid_points,
        )
    )
