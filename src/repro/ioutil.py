"""Durable atomic file writes shared by checkpoints and telemetry.

A bare ``tmp.write_text(...); os.replace(tmp, path)`` is atomic with
respect to *readers* but not with respect to *crashes*: until the
filesystem flushes the temp file's data, a power loss after the rename
can leave ``path`` pointing at an empty or torn file — a
stale-but-valid-looking checkpoint.  :func:`write_json_atomic` closes
that window by fsyncing the temp file before the rename (and the
containing directory after it, where the platform allows), so the
rename only ever publishes fully-persisted bytes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Mapping, Union

__all__ = [
    "CHECKSUM_KEY",
    "append_jsonl_line",
    "canonical_payload",
    "config_digest",
    "payload_checksum",
    "stamp_checksum",
    "verify_checksum",
    "write_json_atomic",
    "write_text_atomic",
]

#: Key under which :func:`stamp_checksum` records a payload's digest.
CHECKSUM_KEY = "sha256"


def canonical_payload(value: Any) -> Any:
    """Normalize ``value`` into plain, JSON-stable Python data.

    The same logical configuration can arrive as a frozen dataclass, a
    keyword dict, a tuple-holding structure or a JSON round trip of any
    of those; digesting must not care.  Recursively: dataclass
    *instances* become plain field dicts, mappings become dicts with
    string keys, tuples/lists/sets become lists (sets sorted by their
    canonical JSON encoding, since JSON has no unordered type), numpy
    scalars become their Python equivalents, numpy arrays become nested
    lists, and paths become strings.  Scalars pass through unchanged, so
    a payload that is already canonical canonicalizes to itself.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: canonical_payload(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(key): canonical_payload(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical_payload(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(
            (canonical_payload(item) for item in value),
            key=lambda item: json.dumps(item, sort_keys=True),
        )
    if isinstance(value, Path):
        return str(value)
    if hasattr(value, "item") and hasattr(value, "dtype"):
        # numpy scalars (and 0-d arrays) carry .item(); n-d arrays carry
        # .tolist().  Checked structurally so ioutil never imports numpy.
        if hasattr(value, "tolist") and getattr(value, "ndim", 0) > 0:
            return canonical_payload(value.tolist())
        return value.item()
    return value


def config_digest(config: Any) -> str:
    """The canonical sha256 hex digest of a configuration.

    *The* digest implementation shared by the coverage service's
    result cache, the run ledger's ``config_digest`` column and the
    checkpoint stamps: ``config`` is normalized via
    :func:`canonical_payload` (so dataclasses, keyword dicts and JSON
    round trips of the same configuration digest identically) and then
    hashed with the same sorted-key JSON encoding
    :func:`payload_checksum` uses.  Non-mapping configurations are
    wrapped as ``{"config": ...}`` so every digest goes through one
    code path.
    """
    canonical = canonical_payload(config)
    if not isinstance(canonical, dict):
        canonical = {"config": canonical}
    return payload_checksum(canonical)


def payload_checksum(payload: Mapping[str, Any]) -> str:
    """The sha256 hex digest of ``payload`` minus its checksum field.

    The digest is computed over the canonical (key-sorted) JSON
    encoding, so it is stable across dict insertion orders and across
    write/read round trips.
    """
    body = {key: value for key, value in payload.items() if key != CHECKSUM_KEY}
    encoded = json.dumps(body, sort_keys=True).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def stamp_checksum(payload: Mapping[str, Any]) -> dict:
    """A copy of ``payload`` with its sha256 digest stamped in.

    Readers call :func:`verify_checksum` to detect torn or truncated
    files: JSON that still parses but lost (or mutated) fields fails
    the digest even though it looks structurally plausible.
    """
    stamped = dict(payload)
    stamped[CHECKSUM_KEY] = payload_checksum(payload)
    return stamped


def verify_checksum(payload: Mapping[str, Any]) -> bool:
    """Whether a stamped payload's digest matches its contents.

    Payloads without a checksum field pass (pre-checksum files remain
    loadable); payloads with one must match exactly.
    """
    recorded = payload.get(CHECKSUM_KEY)
    if recorded is None:
        return True
    return recorded == payload_checksum(payload)


def write_text_atomic(path: Union[str, Path], text: str) -> Path:
    """Durably replace ``path`` with ``text`` (fsync before the rename).

    The temp file lives next to the target (same filesystem, so the
    rename is atomic), is flushed and fsynced before ``os.replace``,
    and the parent directory is fsynced afterwards so the rename itself
    survives a crash.  Directory fsync is best-effort: some platforms
    and filesystems refuse it, and the file-level fsync already covers
    the torn-write window.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return path
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)
    return path


def write_json_atomic(path: Union[str, Path], payload: Any) -> Path:
    """Durably replace ``path`` with ``payload`` serialized as JSON."""
    return write_text_atomic(path, json.dumps(payload))


def append_jsonl_line(path: Union[str, Path], payload: Mapping[str, Any]) -> Path:
    """Durably append ``payload`` as one JSONL line to ``path``.

    The encoded line (newline included) goes out in a single
    ``os.write`` on an ``O_APPEND`` descriptor — POSIX appends of one
    small write are atomic with respect to concurrent appenders, so two
    processes growing the same ledger can interleave *lines* but never
    *bytes*.  The descriptor is fsynced before close, matching the
    durability bar of the atomic writers above.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = (json.dumps(payload) + "\n").encode("utf-8")
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line)
        os.fsync(fd)
    finally:
        os.close(fd)
    return path
