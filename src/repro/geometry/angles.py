"""Arithmetic on the circle ``S^1``.

Angles are measured in radians, anticlockwise, with no distinguished
representative: any real number denotes a direction.  The helpers here
normalise to canonical ranges and compute circular differences, in both
scalar and vectorised (numpy) form.  All vectorised functions accept
array-likes and broadcast like the underlying numpy ufuncs.

Conventions
-----------
- :func:`normalize_angle` maps to ``[0, 2*pi)``.
- :func:`normalize_angle_signed` maps to ``(-pi, pi]``.
- :func:`angular_distance` is the unsigned geodesic distance on the
  circle, in ``[0, pi]``.  This is the quantity the paper writes as
  ``angle(d, PS)`` in Definition 1.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.errors import InvalidParameterError

__all__ = [
    "ArrayLike",
    "TWO_PI",
    "angle_linspace",
    "angular_distance",
    "circular_mean",
    "is_angle_between",
    "normalize_angle",
    "normalize_angle_signed",
    "signed_angular_difference",
    "validate_effective_angle",
]

TWO_PI: float = 2.0 * math.pi

ArrayLike = Union[float, int, np.ndarray]


def validate_effective_angle(theta: float) -> float:
    """Validate the effective angle ``theta in (0, pi]`` and return it.

    This is the canonical home of the check (every layer from the exact
    gap test to the batch kernels validates ``theta`` through it); it
    lives with the angle arithmetic so that core modules can share it
    without importing each other.
    """
    if not (0.0 < theta <= math.pi + 1e-12):
        raise InvalidParameterError(
            f"effective angle theta must be in (0, pi], got {theta!r}"
        )
    return min(float(theta), math.pi)


def normalize_angle(angle: ArrayLike) -> ArrayLike:
    """Map an angle (or array of angles) to the range ``[0, 2*pi)``.

    >>> normalize_angle(-math.pi / 2) == 3 * math.pi / 2
    True
    """
    if isinstance(angle, np.ndarray):
        result = np.mod(angle, TWO_PI)
        # mod of a tiny negative value can round up to exactly 2*pi.
        return np.where(result >= TWO_PI, 0.0, result)
    result = math.fmod(angle, TWO_PI)
    if result < 0.0:
        result += TWO_PI
    # fmod of a tiny negative number can round up to exactly 2*pi.
    if result >= TWO_PI:
        result -= TWO_PI
    return result


def normalize_angle_signed(angle: ArrayLike) -> ArrayLike:
    """Map an angle (or array of angles) to the range ``(-pi, pi]``."""
    if isinstance(angle, np.ndarray):
        result = np.mod(angle + math.pi, TWO_PI) - math.pi
        # mod can return exactly -pi for inputs equivalent to pi.
        return np.where(result <= -math.pi, math.pi, result)
    result = normalize_angle(angle)
    if result > math.pi:
        result -= TWO_PI
    return result


def signed_angular_difference(target: ArrayLike, source: ArrayLike) -> ArrayLike:
    """Signed rotation from ``source`` to ``target``, in ``(-pi, pi]``.

    Positive means ``target`` lies anticlockwise of ``source``.
    """
    if isinstance(target, np.ndarray) or isinstance(source, np.ndarray):
        return normalize_angle_signed(np.asarray(target) - np.asarray(source))
    return normalize_angle_signed(target - source)


def angular_distance(a: ArrayLike, b: ArrayLike) -> ArrayLike:
    """Unsigned geodesic distance between two directions, in ``[0, pi]``.

    This is the paper's ``angle(d, PS)``: the smaller of the two arcs
    between the directions.
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.abs(normalize_angle_signed(np.asarray(a) - np.asarray(b)))
    return abs(normalize_angle_signed(a - b))


def is_angle_between(angle: ArrayLike, start: float, extent: float) -> ArrayLike:
    """Test whether ``angle`` lies in the arc ``[start, start + extent]``.

    The arc sweeps anticlockwise from ``start`` for ``extent`` radians
    (``0 <= extent <= 2*pi``).  Endpoints are inclusive.  Works on
    scalars or arrays of ``angle``.
    """
    if extent < 0.0 or extent > TWO_PI + 1e-12:
        raise InvalidParameterError(f"arc extent must be in [0, 2*pi], got {extent!r}")
    if extent >= TWO_PI:
        if isinstance(angle, np.ndarray):
            return np.ones_like(angle, dtype=bool)
        return True
    if isinstance(angle, np.ndarray):
        offset = np.mod(angle - start, TWO_PI)
        return offset <= extent
    offset = normalize_angle(angle - start)
    return offset <= extent


def circular_mean(angles: np.ndarray) -> float:
    """Circular mean direction of a non-empty array of angles.

    Raises :class:`~repro.errors.InvalidParameterError` when the
    resultant vector is (numerically) zero, because the mean direction is then undefined.
    """
    angles = np.asarray(angles, dtype=float)
    if angles.size == 0:
        raise InvalidParameterError("circular_mean of an empty set is undefined")
    s = float(np.sin(angles).sum())
    c = float(np.cos(angles).sum())
    if math.hypot(s, c) < 1e-12:
        raise InvalidParameterError("circular mean undefined: resultant vector is zero")
    return normalize_angle(math.atan2(s, c))


def angle_linspace(start: float, extent: float, count: int) -> np.ndarray:
    """``count`` directions evenly spaced over the arc of given extent.

    The first sample is at ``start``; samples advance anticlockwise and
    the arc end is excluded (like :func:`numpy.linspace` with
    ``endpoint=False``), which makes full-circle sampling uniform.
    """
    if count <= 0:
        raise InvalidParameterError(f"count must be positive, got {count!r}")
    steps = np.arange(count, dtype=float) * (extent / count)
    return normalize_angle(start + steps)
