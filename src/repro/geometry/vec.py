"""Light-weight 2-D vector helpers.

Points and directions are plain ``(x, y)`` tuples or ``(..., 2)`` numpy
arrays; this module provides the handful of operations coverage code
needs (polar conversion, rotation, heading extraction) without
introducing a vector class that would slow down the hot paths.
"""

from __future__ import annotations

import math
from typing import Tuple, Union

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.angles import normalize_angle

__all__ = [
    "ArrayOrPoint",
    "Point",
    "angle_of",
    "as_points_array",
    "from_polar",
    "norm",
    "rotate",
    "translate",
    "unit_vector",
]

Point = Tuple[float, float]
ArrayOrPoint = Union[Point, np.ndarray]


def unit_vector(angle: float) -> Point:
    """Unit vector pointing in direction ``angle``."""
    return (math.cos(angle), math.sin(angle))


def from_polar(radius: float, angle: float) -> Point:
    """Cartesian coordinates of the polar point ``(radius, angle)``."""
    return (radius * math.cos(angle), radius * math.sin(angle))


def angle_of(vector: ArrayOrPoint) -> Union[float, np.ndarray]:
    """Heading of a vector (or rows of an ``(..., 2)`` array) in ``[0, 2*pi)``.

    The zero vector has no heading; for scalar input a
    :class:`ValueError` is raised, while array input returns ``0.0`` for
    zero rows (callers on vectorised paths mask those rows themselves).
    """
    if isinstance(vector, np.ndarray) and vector.ndim >= 2:
        return normalize_angle(np.arctan2(vector[..., 1], vector[..., 0]))
    x, y = float(vector[0]), float(vector[1])
    if x == 0.0 and y == 0.0:  # fvlint: disable=FV004 (exact zero-vector sentinel)
        raise InvalidParameterError("the zero vector has no heading")
    return normalize_angle(math.atan2(y, x))


def rotate(vector: Point, angle: float) -> Point:
    """Rotate a vector anticlockwise by ``angle`` radians."""
    c, s = math.cos(angle), math.sin(angle)
    x, y = vector
    return (c * x - s * y, s * x + c * y)


def norm(vector: ArrayOrPoint) -> Union[float, np.ndarray]:
    """Euclidean length of a vector or of rows of an ``(..., 2)`` array."""
    if isinstance(vector, np.ndarray) and vector.ndim >= 2:
        return np.hypot(vector[..., 0], vector[..., 1])
    return math.hypot(float(vector[0]), float(vector[1]))


def translate(point: Point, offset: Point) -> Point:
    """Translate ``point`` by ``offset``."""
    return (point[0] + offset[0], point[1] + offset[1])


def as_points_array(points) -> np.ndarray:
    """Coerce a point, sequence of points, or array to an ``(n, 2)`` array."""
    array = np.asarray(points, dtype=float)
    if array.ndim == 1:
        if array.shape[0] != 2:
            raise InvalidParameterError(f"expected a 2-D point, got shape {array.shape}")
        array = array.reshape(1, 2)
    if array.ndim != 2 or array.shape[1] != 2:
        raise InvalidParameterError(f"expected an (n, 2) array of points, got shape {array.shape}")
    return array
