"""Occlusion: opaque obstacles blocking camera sight lines.

The paper's introduction lists "the obstruction of terrains" among the
reasons real camera fleets are heterogeneous and degraded.  This module
provides the geometric substrate for studying that effect directly: a
field of opaque disks, and a visibility test that decides whether the
segment from a sensor to an object is blocked.

Visibility is computed on the torus by taking the *shortest*
displacement between the two points (the same geodesic the sensing
model uses) and testing segment-disk intersection against each obstacle
within reach.  Points inside an obstacle are never visible.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.angles import normalize_angle
from repro.geometry.torus import Region, UNIT_TORUS

__all__ = ["ObstacleField", "Point", "occluded_covering_directions"]

Point = Tuple[float, float]


class ObstacleField:
    """A set of opaque disks inside a region.

    Parameters
    ----------
    centers:
        ``(k, 2)`` disk centres (wrapped into the region).
    radii:
        ``(k,)`` disk radii, all positive.
    region:
        Geometry provider (wrapping behaviour).
    """

    __slots__ = ("region", "_centers", "_radii")

    def __init__(
        self,
        centers: np.ndarray,
        radii: np.ndarray,
        region: Region = UNIT_TORUS,
    ) -> None:
        centers = np.asarray(centers, dtype=float).reshape(-1, 2)
        radii = np.asarray(radii, dtype=float).reshape(-1)
        if centers.shape[0] != radii.shape[0]:
            raise InvalidParameterError("centers and radii must have equal length")
        if radii.size and ((radii <= 0) | ~np.isfinite(radii)).any():
            raise InvalidParameterError("all obstacle radii must be positive and finite")
        self.region = region
        self._centers = region.wrap_points(centers).copy()
        self._radii = radii.copy()

    @classmethod
    def empty(cls, region: Region = UNIT_TORUS) -> "ObstacleField":
        return cls(np.empty((0, 2)), np.empty(0), region)

    @classmethod
    def random(
        cls,
        count: int,
        radius: float,
        rng: np.random.Generator,
        region: Region = UNIT_TORUS,
        radius_jitter: float = 0.0,
    ) -> "ObstacleField":
        """``count`` uniformly placed disks of (jittered) ``radius``."""
        if count < 0:
            raise InvalidParameterError(f"count must be >= 0, got {count!r}")
        if count == 0:
            return cls.empty(region)
        if radius <= 0:
            raise InvalidParameterError(f"radius must be positive, got {radius!r}")
        if radius_jitter < 0:
            raise InvalidParameterError("radius_jitter must be >= 0")
        centers = rng.uniform(0.0, region.side, size=(count, 2))
        radii = np.full(count, radius)
        if radius_jitter > 0:
            radii = np.maximum(1e-6, radii + rng.normal(scale=radius_jitter, size=count))
        return cls(centers, radii, region)

    def __len__(self) -> int:
        return self._centers.shape[0]

    @property
    def centers(self) -> np.ndarray:
        view = self._centers.view()
        view.flags.writeable = False
        return view

    @property
    def radii(self) -> np.ndarray:
        view = self._radii.view()
        view.flags.writeable = False
        return view

    def total_area(self) -> float:
        """Total disk area (ignoring overlaps)."""
        return float(np.sum(math.pi * self._radii**2))

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside (or on) any obstacle."""
        if len(self) == 0:
            return False
        dists = self.region.distances(point, self._centers)
        return bool((dists <= self._radii).any())

    def _center_images(self, source: Point) -> np.ndarray:
        """Obstacle-centre displacements from ``source``, with torus images.

        On the torus the geodesic segment can pass near a *periodic
        image* of an obstacle other than the image nearest the source,
        so all nine translates are returned (``(k*9, 2)``); on a
        bounded region just the plain displacements (``(k, 2)``).
        """
        base = self.region.displacements(source, self._centers)
        if not self.region.torus:
            return base
        side = self.region.side
        offsets = np.array(
            [(ix * side, iy * side) for ix in (-1, 0, 1) for iy in (-1, 0, 1)]
        )
        return (base[:, None, :] + offsets[None, :, :]).reshape(-1, 2)

    def _image_radii(self) -> np.ndarray:
        """Radii aligned with :meth:`_center_images` rows."""
        if not self.region.torus:
            return self._radii
        return np.repeat(self._radii, 9)

    def blocks(self, source: Point, target: Point) -> bool:
        """Whether any obstacle intersects the geodesic segment.

        The segment is the shortest path from ``source`` to ``target``
        on the region (wrapped on the torus).  Endpoints strictly
        inside an obstacle count as blocked.
        """
        if len(self) == 0:
            return False
        dx, dy = self.region.displacement(source, target)
        centers = self._center_images(source)
        radii = self._image_radii()
        seg_len_sq = dx * dx + dy * dy
        if seg_len_sq == 0.0:  # fvlint: disable=FV004 (exact degenerate-segment sentinel)
            dists = np.hypot(centers[:, 0], centers[:, 1])
        else:
            t = np.clip((centers[:, 0] * dx + centers[:, 1] * dy) / seg_len_sq, 0.0, 1.0)
            dists = np.hypot(centers[:, 0] - t * dx, centers[:, 1] - t * dy)
        return bool((dists <= radii).any())

    def visible_mask(self, source: Point, targets: np.ndarray) -> np.ndarray:
        """Vectorised visibility from one point to many.

        Returns a boolean array, true where the sight line to the
        target is unobstructed.
        """
        targets = np.asarray(targets, dtype=float).reshape(-1, 2)
        if len(self) == 0:
            return np.ones(targets.shape[0], dtype=bool)
        deltas = self.region.displacements(source, targets)  # (m, 2)
        centers = self._center_images(source)  # (K, 2)
        radii = self._image_radii()  # (K,)
        dx = deltas[:, 0][:, None]
        dy = deltas[:, 1][:, None]
        seg_len_sq = dx * dx + dy * dy
        cx = centers[:, 0][None, :]
        cy = centers[:, 1][None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            t = np.where(seg_len_sq > 0, (cx * dx + cy * dy) / seg_len_sq, 0.0)
        t = np.clip(t, 0.0, 1.0)
        ddx = cx - t * dx
        ddy = cy - t * dy
        blocked = (np.hypot(ddx, ddy) <= radii[None, :]).any(axis=1)
        return ~blocked


def occluded_covering_directions(
    fleet, point: Point, obstacles: ObstacleField
) -> np.ndarray:
    """Viewed directions of sensors that cover ``point`` AND see it.

    The binary-sector covering set of the fleet, thinned by
    line-of-sight through the obstacle field.  An object standing
    inside an obstacle is seen by nobody.
    """
    if obstacles.contains(point):
        return np.empty(0, dtype=float)
    idx = fleet.covering(point)
    if idx.size == 0:
        return np.empty(0, dtype=float)
    positions = fleet.positions[idx]
    visible = obstacles.visible_mask(point, positions)
    idx = idx[visible]
    if idx.size == 0:
        return np.empty(0, dtype=float)
    delta = fleet.region.displacements(point, fleet.positions[idx])
    apart = delta[:, 0] ** 2 + delta[:, 1] ** 2 > 1e-24  # apex tolerance
    delta = delta[apart]
    if delta.shape[0] == 0:
        return np.empty(0, dtype=float)
    return normalize_angle(np.arctan2(delta[:, 1], delta[:, 0]))
