"""A toroidal cell index for fast neighbour queries.

Coverage checks repeatedly ask "which sensors could possibly cover this
point?" — i.e. which sensor apexes lie within the largest sensing radius
of the point.  :class:`ToroidalCellIndex` buckets points into a uniform
grid of cells over the region and answers radius queries by scanning
only the cells that intersect the query disk, wrapping across the torus
seam when the region wraps.

For the sensor counts the paper studies (``n`` up to tens of thousands,
radii of order ``sqrt(log n / n)``), this turns per-point candidate
scans from ``O(n)`` into ``O(1)`` expected.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.torus import Region, UNIT_TORUS

__all__ = ["Point", "ToroidalCellIndex"]

Point = Tuple[float, float]


class ToroidalCellIndex:
    """Uniform-cell spatial index over a square (toroidal) region.

    Parameters
    ----------
    points:
        ``(n, 2)`` array of indexed points (wrapped into the region).
    cell_size:
        Side of each square cell.  Queries with a radius up to any value
        are supported; the cell size only affects performance.  A good
        default is the typical query radius.
    region:
        The geometry provider (wrapping behaviour comes from it).
    """

    def __init__(
        self,
        points: np.ndarray,
        cell_size: float,
        region: Region = UNIT_TORUS,
    ) -> None:
        if not (math.isfinite(cell_size) and cell_size > 0):
            raise InvalidParameterError(f"cell_size must be positive, got {cell_size!r}")
        self.region = region
        self._points = region.wrap_points(np.asarray(points, dtype=float).reshape(-1, 2))
        # Never more cells per side than points would justify, and at least 1.
        max_cells = max(1, int(region.side / cell_size))
        self._cells_per_side = max(1, min(max_cells, 4096))
        self._cell_size = region.side / self._cells_per_side
        self._buckets: Dict[Tuple[int, int], List[int]] = {}
        for idx, (x, y) in enumerate(self._points):
            key = self._cell_of(float(x), float(y))
            self._buckets.setdefault(key, []).append(idx)

    def __len__(self) -> int:
        return self._points.shape[0]

    @property
    def points(self) -> np.ndarray:
        view = self._points.view()
        view.flags.writeable = False
        return view

    def _cell_of(self, x: float, y: float) -> Tuple[int, int]:
        cx = int(x / self._cell_size)
        cy = int(y / self._cell_size)
        # Guard against points exactly on the far edge.
        return (min(cx, self._cells_per_side - 1), min(cy, self._cells_per_side - 1))

    def candidates_within(self, point: Point, radius: float) -> np.ndarray:
        """Indices of points whose cell intersects the query disk.

        This is a superset of the points within ``radius`` — callers
        refine with an exact distance test (see :meth:`query`).
        """
        if radius < 0:
            raise InvalidParameterError(f"radius must be non-negative, got {radius!r}")
        px, py = self.region.wrap_point(point)
        reach = int(math.ceil(radius / self._cell_size))
        cx, cy = self._cell_of(px, py)
        n_cells = self._cells_per_side
        if 2 * reach + 1 >= n_cells:
            # Query disk spans the whole region: return everything.
            return np.arange(len(self), dtype=np.intp)
        found: List[int] = []
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                ix, iy = cx + dx, cy + dy
                if self.region.torus:
                    key = (ix % n_cells, iy % n_cells)
                elif 0 <= ix < n_cells and 0 <= iy < n_cells:
                    key = (ix, iy)
                else:
                    continue
                bucket = self._buckets.get(key)
                if bucket:
                    found.extend(bucket)
        return np.asarray(sorted(set(found)), dtype=np.intp)

    def query(self, point: Point, radius: float) -> np.ndarray:
        """Indices of indexed points within ``radius`` of ``point``.

        Distances honour the region's wrapping.  The result is sorted
        and duplicate-free.
        """
        candidates = self.candidates_within(point, radius)
        if candidates.size == 0:
            return candidates
        dists = self.region.distances(point, self._points[candidates])
        return candidates[dists <= radius]

    def nearest(self, point: Point) -> Tuple[int, float]:
        """Index and distance of the nearest indexed point.

        Falls back to a full scan when local cells are empty (correct on
        both torus and bounded square).  Raises
        :class:`~repro.errors.InvalidParameterError` on an empty index.
        """
        if len(self) == 0:
            raise InvalidParameterError("nearest() on an empty index")
        # Expanding ring search, falling back to exhaustive scan.
        radius = self._cell_size
        while radius < self.region.max_distance():
            hits = self.query(point, radius)
            if hits.size:
                dists = self.region.distances(point, self._points[hits])
                best = int(np.argmin(dists))
                return int(hits[best]), float(dists[best])
            radius *= 2.0
        dists = self.region.distances(point, self._points)
        best = int(np.argmin(dists))
        return best, float(dists[best])
