"""A toroidal cell index for fast neighbour queries.

Coverage checks repeatedly ask "which sensors could possibly cover this
point?" — i.e. which sensor apexes lie within the largest sensing radius
of the point.  :class:`ToroidalCellIndex` buckets points into a uniform
grid of cells over the region and answers radius queries by scanning
only the cells that intersect the query disk, wrapping across the torus
seam when the region wraps.

Storage is a CSR-style cell layout built with vectorised numpy ops: the
indexed points are argsorted by flattened cell id into ``_members``, and
``_cell_starts`` holds the prefix offsets of each cell's slice.  The
same layout serves the scalar queries and the batched
:meth:`ToroidalCellIndex.query_radius_batch`, which answers a radius
query for *many* points at once with no per-point Python loops — the
candidate-pruning backbone of the sparse coverage kernels in
:mod:`repro.core.batch`.

For the sensor counts the paper studies (``n`` up to tens of thousands,
radii of order ``sqrt(log n / n)``), this turns per-point candidate
scans from ``O(n)`` into ``O(1)`` expected.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.torus import Region, UNIT_TORUS

__all__ = ["Point", "ToroidalCellIndex"]

Point = Tuple[float, float]


class ToroidalCellIndex:
    """Uniform-cell spatial index over a square (toroidal) region.

    Parameters
    ----------
    points:
        ``(n, 2)`` array of indexed points (wrapped into the region).
    cell_size:
        Side of each square cell.  Queries with a radius up to any value
        are supported; the cell size only affects performance.  A good
        default is the typical query radius.
    region:
        The geometry provider (wrapping behaviour comes from it).
    """

    def __init__(
        self,
        points: np.ndarray,
        cell_size: float,
        region: Region = UNIT_TORUS,
    ) -> None:
        if not (math.isfinite(cell_size) and cell_size > 0):
            raise InvalidParameterError(f"cell_size must be positive, got {cell_size!r}")
        self.region = region
        self._points = region.wrap_points(np.asarray(points, dtype=float).reshape(-1, 2))
        # Never more cells per side than points would justify, and at least 1.
        max_cells = max(1, int(region.side / cell_size))
        self._cells_per_side = max(1, min(max_cells, 4096))
        self._cell_size = region.side / self._cells_per_side
        cs = self._cells_per_side
        cx, cy = self._cell_coords(self._points)
        cell_ids = cx * cs + cy
        # CSR layout: point indices argsorted by cell id, plus per-cell
        # prefix offsets.  The stable sort keeps members of a cell in
        # ascending point-index order.
        self._members = np.argsort(cell_ids, kind="stable").astype(np.intp)
        counts = np.bincount(cell_ids, minlength=cs * cs)
        self._cell_starts = np.zeros(cs * cs + 1, dtype=np.intp)
        np.cumsum(counts, out=self._cell_starts[1:])

    def __len__(self) -> int:
        return self._points.shape[0]

    @property
    def points(self) -> np.ndarray:
        view = self._points.view()
        view.flags.writeable = False
        return view

    def _cell_coords(self, points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised cell coordinates, clipped into the cell grid.

        Clipping guards points exactly on the far edge (torus) and
        out-of-region points (bounded square), matching the scalar
        guard the dict-bucket implementation applied per point.
        """
        cs = self._cells_per_side
        cx = np.clip((points[:, 0] / self._cell_size).astype(np.intp), 0, cs - 1)
        cy = np.clip((points[:, 1] / self._cell_size).astype(np.intp), 0, cs - 1)
        return cx, cy

    def _gather_cells(self, cells: np.ndarray) -> np.ndarray:
        """Concatenated member indices of ``cells`` (flattened cell ids)."""
        starts = self._cell_starts[cells]
        lengths = self._cell_starts[cells + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.intp)
        ends = np.cumsum(lengths)
        # Position j of the output reads _members at
        # starts[cell of j] + (j - begin of that cell's output slice).
        take = np.arange(total, dtype=np.intp) + np.repeat(starts - (ends - lengths), lengths)
        return self._members[take]

    def candidates_within(self, point: Point, radius: float) -> np.ndarray:
        """Indices of points whose cell intersects the query disk.

        This is a superset of the points within ``radius`` — callers
        refine with an exact distance test (see :meth:`query`).  The
        result is sorted and duplicate-free.
        """
        if radius < 0:
            raise InvalidParameterError(f"radius must be non-negative, got {radius!r}")
        px, py = self.region.wrap_point(point)
        reach = int(math.ceil(radius / self._cell_size))
        cs = self._cells_per_side
        if 2 * reach + 1 >= cs:
            # Query disk spans the whole region: return everything.
            return np.arange(len(self), dtype=np.intp)
        probe = np.array([[px, py]], dtype=float)
        cx, cy = self._cell_coords(probe)
        offsets = np.arange(-reach, reach + 1, dtype=np.intp)
        xs = cx[0] + offsets
        ys = cy[0] + offsets
        if self.region.torus:
            xs %= cs
            ys %= cs
        else:
            xs = xs[(xs >= 0) & (xs < cs)]
            ys = ys[(ys >= 0) & (ys < cs)]
        cells = (xs[:, None] * cs + ys[None, :]).ravel()
        found = self._gather_cells(cells)
        found.sort()
        return found

    def query(self, point: Point, radius: float) -> np.ndarray:
        """Indices of indexed points within ``radius`` of ``point``.

        Distances honour the region's wrapping.  The result is sorted
        and duplicate-free.
        """
        candidates = self.candidates_within(point, radius)
        if candidates.size == 0:
            return candidates
        dists = self.region.distances(point, self._points[candidates])
        return candidates[dists <= radius]

    def query_radius_batch(
        self, points: np.ndarray, radius: float, refine: bool = True
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Radius query for many points at once, CSR-style.

        Parameters
        ----------
        points:
            ``(m, 2)`` array of query points.
        radius:
            Query radius (one value for all points).
        refine:
            When true (default) candidates are filtered by the exact
            wrapped distance, so row ``i`` equals
            ``query(points[i], radius)``.  When false the cell-level
            candidate superset is returned unfiltered — row ``i``
            equals ``candidates_within(points[i], radius)`` — which is
            what the sparse coverage kernels want (they apply their own
            exact per-pair tests).

        Returns
        -------
        indptr:
            ``(m + 1,)`` intp prefix offsets.
        indices:
            ``(nnz,)`` intp indexed-point ids; row ``i`` occupies
            ``indices[indptr[i]:indptr[i + 1]]``, ascending within the
            row and duplicate-free.

        The whole computation is vectorised over points *and* candidate
        cells — no per-point Python loops.
        """
        if radius < 0:
            raise InvalidParameterError(f"radius must be non-negative, got {radius!r}")
        pts = self.region.wrap_points(np.asarray(points, dtype=float).reshape(-1, 2))
        m = pts.shape[0]
        n = len(self)
        if m == 0 or n == 0:
            return np.zeros(m + 1, dtype=np.intp), np.empty(0, dtype=np.intp)
        cs = self._cells_per_side
        reach = int(math.ceil(radius / self._cell_size))
        if 2 * reach + 1 >= cs:
            # Every query disk spans the whole region: all pairs are
            # candidates (the sensors-cover-the-torus regime).
            per_point = np.full(m, n, dtype=np.intp)
            cand = np.tile(np.arange(n, dtype=np.intp), m)
        else:
            pcx, pcy = self._cell_coords(pts)
            offsets = np.arange(-reach, reach + 1, dtype=np.intp)
            xs = pcx[:, None] + offsets[None, :]
            ys = pcy[:, None] + offsets[None, :]
            if self.region.torus:
                xs %= cs
                ys %= cs
                valid = np.ones((m, offsets.size, offsets.size), dtype=bool)
            else:
                valid_x = (xs >= 0) & (xs < cs)
                valid_y = (ys >= 0) & (ys < cs)
                valid = valid_x[:, :, None] & valid_y[:, None, :]
                xs = np.clip(xs, 0, cs - 1)
                ys = np.clip(ys, 0, cs - 1)
            # (m, k, k) flattened cell ids for each point's reach block;
            # with 2*reach+1 < cs the wrapped cells of one block are
            # distinct, so no deduplication is needed.
            cells = (xs[:, :, None] * cs + ys[:, None, :]).reshape(m, -1)
            valid = valid.reshape(m, -1)
            starts = self._cell_starts[cells]
            lengths = np.where(valid, self._cell_starts[cells + 1] - starts, 0)
            per_point = lengths.sum(axis=1).astype(np.intp)
            flat_lengths = lengths.ravel()
            flat_starts = starts.ravel()
            total = int(flat_lengths.sum())
            ends = np.cumsum(flat_lengths)
            take = np.arange(total, dtype=np.intp) + np.repeat(
                flat_starts - (ends - flat_lengths), flat_lengths
            )
            cand = self._members[take]
        rows = np.repeat(np.arange(m, dtype=np.intp), per_point)
        if refine:
            delta = self._points[cand] - pts[rows]
            if self.region.torus:
                half = 0.5 * self.region.side
                delta = np.mod(delta + half, self.region.side) - half
            # Same comparison as query(): hypot distance against radius.
            keep = np.hypot(delta[:, 0], delta[:, 1]) <= radius
            cand = cand[keep]
            rows = rows[keep]
        order = np.lexsort((cand, rows))
        cand = cand[order]
        counts = np.bincount(rows, minlength=m)
        indptr = np.zeros(m + 1, dtype=np.intp)
        np.cumsum(counts, out=indptr[1:])
        return indptr, cand

    def nearest(self, point: Point) -> Tuple[int, float]:
        """Index and distance of the nearest indexed point.

        Falls back to a full scan when local cells are empty (correct on
        both torus and bounded square).  Raises
        :class:`~repro.errors.InvalidParameterError` on an empty index.
        """
        if len(self) == 0:
            raise InvalidParameterError("nearest() on an empty index")
        # Expanding ring search, falling back to exhaustive scan.
        radius = self._cell_size
        while radius < self.region.max_distance():
            hits = self.query(point, radius)
            if hits.size:
                dists = self.region.distances(point, self._points[hits])
                best = int(np.argmin(dists))
                return int(hits[best]), float(dists[best])
            radius *= 2.0
        dists = self.region.distances(point, self._points)
        best = int(np.argmin(dists))
        return best, float(dists[best])
