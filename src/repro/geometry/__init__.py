"""Geometric substrate for camera-sensor coverage analysis.

This subpackage provides every geometric primitive the coverage theory
is built on:

- :mod:`repro.geometry.angles` — arithmetic on the circle ``S^1``
  (normalisation, signed/unsigned differences, containment in arcs).
- :mod:`repro.geometry.vec` — light-weight 2-D vector helpers backed by
  numpy, plus polar conversions.
- :mod:`repro.geometry.intervals` — an exact algebra of angular
  intervals (arcs): union, complement, gaps and measure.  This is the
  engine behind the *exact* full-view coverage test.
- :mod:`repro.geometry.sector` — the binary sector sensing region and
  containment predicates (scalar and vectorised).
- :mod:`repro.geometry.torus` — the unit square treated as a torus, as
  the paper assumes, so boundary effects vanish.
- :mod:`repro.geometry.grid` — the dense grid ``M`` with
  ``m >= n log n`` points used to discretise area coverage.
- :mod:`repro.geometry.spatial` — a toroidal cell index for fast
  candidate-sensor queries around a point.
"""

from repro.geometry.angles import (
    TWO_PI,
    angular_distance,
    is_angle_between,
    normalize_angle,
    normalize_angle_signed,
    signed_angular_difference,
)
from repro.geometry.grid import DenseGrid, grid_side_for
from repro.geometry.intervals import AngularInterval, AngularIntervalSet
from repro.geometry.sector import Sector
from repro.geometry.spatial import ToroidalCellIndex
from repro.geometry.torus import Region
from repro.geometry.vec import (
    angle_of,
    from_polar,
    rotate,
    unit_vector,
)

__all__ = [
    "TWO_PI",
    "AngularInterval",
    "AngularIntervalSet",
    "DenseGrid",
    "Region",
    "Sector",
    "ToroidalCellIndex",
    "angle_of",
    "angular_distance",
    "from_polar",
    "grid_side_for",
    "is_angle_between",
    "normalize_angle",
    "normalize_angle_signed",
    "rotate",
    "signed_angular_difference",
    "unit_vector",
]
