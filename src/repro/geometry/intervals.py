"""An exact algebra of angular intervals (arcs) on the circle.

The exact full-view coverage test (Definition 1 of the paper) reduces to
a statement about arcs: a point ``P`` is full-view covered with
effective angle ``theta`` iff the union of the arcs
``[psi_i - theta, psi_i + theta]`` over the viewed directions ``psi_i``
of the sensors covering ``P`` is the whole circle.  Equivalently, the
largest circular gap between consecutive viewed directions is at most
``2 * theta``.

:class:`AngularInterval` is a single closed arc described by a start
direction and an anticlockwise extent; :class:`AngularIntervalSet` is a
normalised (sorted, merged, disjoint) union of arcs supporting union,
complement, intersection, measure and gap queries.

All arithmetic uses a small tolerance ``EPS`` so that arcs produced from
floating-point directions merge when they abut.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI, normalize_angle

__all__ = ["AngularInterval", "AngularIntervalSet", "EPS", "max_circular_gap"]

#: Merge tolerance for abutting arcs, in radians.
EPS: float = 1e-12


@dataclass(frozen=True)
class AngularInterval:
    """A closed arc on the circle.

    The arc starts at direction ``start`` (normalised to ``[0, 2*pi)``)
    and sweeps anticlockwise for ``extent`` radians,
    ``0 <= extent <= 2*pi``.  An extent of ``2*pi`` denotes the full
    circle; an extent of ``0`` denotes the single direction ``start``.
    """

    start: float
    extent: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.start) or not math.isfinite(self.extent):
            raise InvalidParameterError("interval endpoints must be finite")
        if self.extent < 0.0 or self.extent > TWO_PI + EPS:
            raise InvalidParameterError(f"extent must be in [0, 2*pi], got {self.extent!r}")
        object.__setattr__(self, "start", normalize_angle(self.start))
        object.__setattr__(self, "extent", min(self.extent, TWO_PI))

    @classmethod
    def from_endpoints(cls, start: float, end: float) -> "AngularInterval":
        """Arc from ``start`` anticlockwise to ``end``.

        When the normalised endpoints coincide the result is the single
        direction, not the full circle (use ``full_circle`` for that).
        """
        return cls(start, normalize_angle(end - start))

    @classmethod
    def centered(cls, center: float, halfwidth: float) -> "AngularInterval":
        """Arc of total width ``2*halfwidth`` centred on ``center``."""
        if halfwidth < 0:
            raise InvalidParameterError(f"halfwidth must be non-negative, got {halfwidth!r}")
        if 2.0 * halfwidth >= TWO_PI:
            return cls.full_circle()
        return cls(center - halfwidth, 2.0 * halfwidth)

    @classmethod
    def full_circle(cls) -> "AngularInterval":
        """The whole circle."""
        return cls(0.0, TWO_PI)

    @property
    def end(self) -> float:
        """End direction of the arc, normalised to ``[0, 2*pi)``."""
        return normalize_angle(self.start + self.extent)

    @property
    def midpoint(self) -> float:
        """Angular bisector of the arc."""
        return normalize_angle(self.start + 0.5 * self.extent)

    @property
    def is_full_circle(self) -> bool:
        return self.extent >= TWO_PI - EPS

    def contains(self, angle: float, tol: float = EPS) -> bool:
        """Whether direction ``angle`` lies on the (closed) arc."""
        if self.is_full_circle:
            return True
        offset = normalize_angle(angle - self.start)
        return offset <= self.extent + tol or offset >= TWO_PI - tol

    def contains_interval(self, other: "AngularInterval", tol: float = EPS) -> bool:
        """Whether ``other`` is entirely inside this arc."""
        if self.is_full_circle:
            return True
        if other.extent > self.extent + tol:
            return False
        offset = normalize_angle(other.start - self.start)
        if offset > TWO_PI - tol:
            offset = 0.0
        return offset + other.extent <= self.extent + tol

    def overlaps(self, other: "AngularInterval", tol: float = EPS) -> bool:
        """Whether the two (closed) arcs intersect."""
        if self.is_full_circle or other.is_full_circle:
            return True
        return (
            self.contains(other.start, tol)
            or self.contains(other.end, tol)
            or other.contains(self.start, tol)
        )

    def rotated(self, angle: float) -> "AngularInterval":
        """The arc rotated anticlockwise by ``angle``."""
        return AngularInterval(self.start + angle, self.extent)

    def sample(self, count: int) -> np.ndarray:
        """``count`` directions evenly spread over the arc (inclusive ends).

        For ``count == 1`` the midpoint is returned.  For the full
        circle the samples are uniform with the duplicate endpoint
        dropped.
        """
        if count <= 0:
            raise InvalidParameterError(f"count must be positive, got {count!r}")
        if count == 1:
            return np.array([self.midpoint])
        if self.is_full_circle:
            steps = np.arange(count, dtype=float) * (TWO_PI / count)
            return normalize_angle(self.start + steps)
        steps = np.linspace(0.0, self.extent, count)
        return normalize_angle(self.start + steps)

    def __iter__(self) -> Iterator[float]:
        yield self.start
        yield self.extent


def _merge_sorted(arcs: List[Tuple[float, float]], tol: float) -> List[Tuple[float, float]]:
    """Merge a start-sorted list of ``(start, end)`` pairs on the line.

    ``end`` may exceed ``2*pi`` for arcs that wrap; the caller handles
    re-wrapping.  Arcs that touch within ``tol`` are merged.
    """
    merged: List[Tuple[float, float]] = []
    for start, end in arcs:
        if merged and start <= merged[-1][1] + tol:
            prev_start, prev_end = merged[-1]
            merged[-1] = (prev_start, max(prev_end, end))
        else:
            merged.append((start, end))
    return merged


class AngularIntervalSet:
    """A normalised union of disjoint closed arcs on the circle.

    The set is immutable after construction: every operation returns a
    new set.  Arcs separated by less than the merge tolerance are fused,
    so ``measure`` is stable under floating-point noise.
    """

    __slots__ = ("_arcs",)

    def __init__(self, intervals: Iterable[AngularInterval] = (), *, tol: float = EPS):
        arcs: List[Tuple[float, float]] = []
        total = 0.0
        for interval in intervals:
            if interval.extent <= 0.0:
                continue
            if interval.is_full_circle:
                arcs = [(0.0, TWO_PI)]
                total = TWO_PI
                break
            arcs.append((interval.start, interval.start + interval.extent))
            total += interval.extent
        self._arcs: Tuple[Tuple[float, float], ...]
        if total >= TWO_PI and arcs and arcs[0] == (0.0, TWO_PI):
            self._arcs = ((0.0, TWO_PI),)
            return
        self._arcs = tuple(self._normalize(arcs, tol))

    @staticmethod
    def _normalize(
        arcs: List[Tuple[float, float]], tol: float
    ) -> List[Tuple[float, float]]:
        """Sort, unwrap and merge raw ``(start, start+extent)`` pairs."""
        if not arcs:
            return []
        # Split wrapping arcs at 0 so every piece lies in [0, 2*pi].
        pieces: List[Tuple[float, float]] = []
        for start, end in arcs:
            extent = end - start
            start = normalize_angle(start)
            end = start + extent
            if end > TWO_PI + tol:
                pieces.append((start, TWO_PI))
                pieces.append((0.0, end - TWO_PI))
            else:
                pieces.append((start, min(end, TWO_PI)))
        pieces.sort()
        merged = _merge_sorted(pieces, tol)
        # Re-join across the 0/2*pi seam.
        if len(merged) >= 2:
            first_start, first_end = merged[0]
            last_start, last_end = merged[-1]
            if first_start <= tol and last_end >= TWO_PI - tol:
                merged = merged[1:-1] + [(last_start, last_end + (first_end - first_start))]
                merged.sort()
        elif len(merged) == 1:
            start, end = merged[0]
            if end - start >= TWO_PI - tol:
                return [(0.0, TWO_PI)]
        # Detect full coverage after seam-joining.
        if len(merged) == 1 and merged[0][1] - merged[0][0] >= TWO_PI - tol:
            return [(0.0, TWO_PI)]
        return merged

    # -- constructors ---------------------------------------------------

    @classmethod
    def empty(cls) -> "AngularIntervalSet":
        return cls(())

    @classmethod
    def full_circle(cls) -> "AngularIntervalSet":
        return cls((AngularInterval.full_circle(),))

    @classmethod
    def from_directions(
        cls, directions: Sequence[float], halfwidth: float
    ) -> "AngularIntervalSet":
        """Union of arcs of half-width ``halfwidth`` around each direction.

        This is the set of *safe facing directions* (Definition 1) when
        ``directions`` are the viewed directions of the sensors covering
        a point and ``halfwidth`` is the effective angle ``theta``.
        """
        return cls(
            AngularInterval.centered(float(d), halfwidth) for d in np.asarray(directions).ravel()
        )

    # -- queries ---------------------------------------------------------

    @property
    def intervals(self) -> Tuple[AngularInterval, ...]:
        """The disjoint arcs, sorted by start (wrapping arc last)."""
        return tuple(
            AngularInterval(start, end - start) for start, end in self._arcs
        )

    @property
    def is_empty(self) -> bool:
        return not self._arcs

    @property
    def is_full_circle(self) -> bool:
        return len(self._arcs) == 1 and self._arcs[0][1] - self._arcs[0][0] >= TWO_PI - EPS

    def measure(self) -> float:
        """Total angular measure of the set, in ``[0, 2*pi]``."""
        return min(sum(end - start for start, end in self._arcs), TWO_PI)

    def contains(self, angle: float, tol: float = EPS) -> bool:
        """Whether direction ``angle`` lies in the set."""
        if self.is_full_circle:
            return True
        offset = normalize_angle(angle)
        if offset >= TWO_PI - tol:
            offset = 0.0
        for start, end in self._arcs:
            if start - tol <= offset <= end + tol:
                return True
            # A piece may extend beyond 2*pi when it wraps.
            if end > TWO_PI and offset + TWO_PI <= end + tol:
                return True
        return False

    def complement(self) -> "AngularIntervalSet":
        """The closure of the complement of the set."""
        if self.is_empty:
            return AngularIntervalSet.full_circle()
        if self.is_full_circle:
            return AngularIntervalSet.empty()
        gaps: List[AngularInterval] = []
        arcs = list(self._arcs)
        for (start_a, end_a), (start_b, _end_b) in zip(arcs, arcs[1:]):
            gaps.append(AngularInterval.from_endpoints(end_a, start_b))
        # Gap from the last arc's end around to the first arc's start.
        last_end = arcs[-1][1]
        first_start = arcs[0][0]
        wrap_extent = normalize_angle(first_start - last_end)
        if wrap_extent > EPS or (len(arcs) == 1 and not self.is_full_circle):
            extent = wrap_extent if wrap_extent > EPS else TWO_PI - self.measure()
            gaps.append(AngularInterval(last_end, extent))
        return AngularIntervalSet(gaps)

    def gaps(self) -> Tuple[AngularInterval, ...]:
        """The maximal arcs not covered by the set."""
        return self.complement().intervals

    def max_gap(self) -> float:
        """Extent of the widest uncovered arc (``0`` when full)."""
        gap_arcs = self.gaps()
        if not gap_arcs:
            return 0.0
        return max(arc.extent for arc in gap_arcs)

    def union(self, other: "AngularIntervalSet") -> "AngularIntervalSet":
        return AngularIntervalSet(self.intervals + other.intervals)

    def add(self, interval: AngularInterval) -> "AngularIntervalSet":
        return AngularIntervalSet(self.intervals + (interval,))

    def intersection(self, other: "AngularIntervalSet") -> "AngularIntervalSet":
        """Set intersection via De Morgan on complements."""
        return self.complement().union(other.complement()).complement()

    def covers_circle(self, tol: float = 1e-9) -> bool:
        """Whether the set covers the whole circle (within tolerance)."""
        return self.measure() >= TWO_PI - tol

    # -- dunder -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._arcs)

    def __iter__(self) -> Iterator[AngularInterval]:
        return iter(self.intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AngularIntervalSet):
            return NotImplemented
        if len(self._arcs) != len(other._arcs):
            return False
        return all(
            math.isclose(a[0], b[0], abs_tol=1e-9) and math.isclose(a[1], b[1], abs_tol=1e-9)
            for a, b in zip(self._arcs, other._arcs)
        )

    def __hash__(self) -> int:  # pragma: no cover - sets are rarely hashed
        return hash(tuple((round(s, 9), round(e, 9)) for s, e in self._arcs))

    def __repr__(self) -> str:
        arcs = ", ".join(f"[{s:.4f}, {e:.4f}]" for s, e in self._arcs)
        return f"AngularIntervalSet({arcs})"


def max_circular_gap(directions: Sequence[float]) -> float:
    """Largest gap between consecutive directions around the circle.

    For an empty input the gap is the full circle (``2*pi``); for a
    single direction it is also ``2*pi`` minus nothing — the whole
    circle must be swept to come back, so the gap is ``2*pi``.  This
    matches the full-view criterion: a point seen by one sensor can
    always face directly away from it.
    """
    array = np.sort(normalize_angle(np.asarray(directions, dtype=float).ravel()))
    if array.size == 0:
        return TWO_PI
    if array.size == 1:
        return TWO_PI
    diffs = np.diff(array)
    wrap = TWO_PI - (array[-1] - array[0])
    return float(max(diffs.max(), wrap))
