"""The dense grid ``M`` used to discretise area coverage.

Following Kumar et al. (and Section III-A of the paper), the coverage of
the unit square is reduced to coverage of a ``sqrt(m) x sqrt(m)`` grid
``M`` with ``m >= n log n`` points: conditions achieving (full-view)
coverage of the grid asymptotically achieve coverage of the whole
square, while grid coverage is trivially necessary.

:func:`grid_side_for` computes the smallest admissible grid side for a
given sensor count; :class:`DenseGrid` materialises the points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Tuple

import numpy as np

from repro.errors import GridIndexError, InvalidParameterError
from repro.geometry.torus import Region, UNIT_TORUS

__all__ = ["DenseGrid", "Point", "grid_points_required", "grid_side_for"]

Point = Tuple[float, float]


def grid_points_required(n: int) -> int:
    """The paper's grid density: ``m = ceil(n * log n)`` points.

    For ``n == 1`` (``log 1 == 0``) a single grid point is used.
    """
    if n < 1:
        raise InvalidParameterError(f"sensor count must be >= 1, got {n!r}")
    return max(1, math.ceil(n * math.log(n)))


def grid_side_for(n: int) -> int:
    """Smallest grid side ``k`` with ``k*k >= n log n`` points."""
    return max(1, math.ceil(math.sqrt(grid_points_required(n))))


@dataclass(frozen=True)
class DenseGrid:
    """A ``side x side`` grid of points in a square region.

    Points are placed at cell centres ``((i + 1/2)/side, (j + 1/2)/side)``
    scaled by the region side, so no grid point sits on the seam of the
    torus and spacing is uniform in both dimensions.
    """

    side: int
    region: Region = UNIT_TORUS
    _points: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.side < 1:
            raise InvalidParameterError(f"grid side must be >= 1, got {self.side!r}")
        coords = (np.arange(self.side, dtype=float) + 0.5) * (self.region.side / self.side)
        xs, ys = np.meshgrid(coords, coords, indexing="ij")
        points = np.stack([xs.ravel(), ys.ravel()], axis=1)
        object.__setattr__(self, "_points", points)

    @classmethod
    def for_sensor_count(cls, n: int, region: Region = UNIT_TORUS) -> "DenseGrid":
        """The grid ``M`` for ``n`` sensors (``m = side**2 >= n log n``)."""
        return cls(side=grid_side_for(n), region=region)

    @property
    def points(self) -> np.ndarray:
        """All grid points as an ``(m, 2)`` array (read-only view)."""
        view = self._points.view()
        view.flags.writeable = False
        return view

    @property
    def spacing(self) -> float:
        """Distance between adjacent grid points."""
        return self.region.side / self.side

    def __len__(self) -> int:
        return self.side * self.side

    def __iter__(self) -> Iterator[Point]:
        for x, y in self._points:
            yield (float(x), float(y))

    def point(self, i: int, j: int) -> Point:
        """The grid point at row ``i``, column ``j``."""
        if not (0 <= i < self.side and 0 <= j < self.side):
            raise GridIndexError(f"grid index ({i}, {j}) out of range for side {self.side}")
        idx = i * self.side + j
        x, y = self._points[idx]
        return (float(x), float(y))

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """A uniform random subset of ``count`` distinct grid points.

        Monte-Carlo estimators use this to bound work on very dense
        grids while remaining unbiased over grid points.
        """
        total = len(self)
        if count <= 0:
            raise InvalidParameterError(f"sample count must be positive, got {count!r}")
        if count >= total:
            return self.points.copy()
        idx = rng.choice(total, size=count, replace=False)
        return self._points[idx].copy()
