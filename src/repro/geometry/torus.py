"""The operational region: a unit square, optionally treated as a torus.

The paper deploys sensors in a unit square that "is supposed to be a
torus so that we can ignore the boundary effect" (Section II-A).
:class:`Region` encapsulates that choice: all displacement and distance
computations go through it, so a single flag switches between toroidal
wrap-around and a plain bounded square (the boundary-effect ablation
called out in DESIGN.md).

Coordinates live in ``[0, side)`` in each dimension; the default side
length is 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.angles import normalize_angle

__all__ = ["Point", "Region", "UNIT_SQUARE", "UNIT_TORUS"]

Point = Tuple[float, float]


@dataclass(frozen=True)
class Region:
    """A square operational region of side ``side``.

    Parameters
    ----------
    side:
        Side length of the square; must be positive.  The paper uses a
        unit square (``side == 1``), the default.
    torus:
        When true (default, matching the paper) opposite edges are
        identified and displacements wrap; when false the region is a
        plain bounded square and no wrapping occurs.
    """

    side: float = 1.0
    torus: bool = True

    def __post_init__(self) -> None:
        if not (math.isfinite(self.side) and self.side > 0):
            raise InvalidParameterError(f"region side must be positive, got {self.side!r}")

    @property
    def area(self) -> float:
        return self.side * self.side

    # -- scalar operations -------------------------------------------------

    def wrap_point(self, point: Point) -> Point:
        """Map a point into the canonical square ``[0, side)^2``."""
        if not self.torus:
            return (float(point[0]), float(point[1]))
        return (point[0] % self.side, point[1] % self.side)

    def contains(self, point: Point) -> bool:
        """Whether a point lies in the canonical square."""
        return 0.0 <= point[0] < self.side and 0.0 <= point[1] < self.side

    def displacement(self, source: Point, target: Point) -> Point:
        """Shortest displacement vector from ``source`` to ``target``.

        On the torus each component is wrapped into
        ``[-side/2, side/2)``; on the bounded square it is the plain
        difference.
        """
        dx = target[0] - source[0]
        dy = target[1] - source[1]
        if self.torus:
            half = 0.5 * self.side
            dx = (dx + half) % self.side - half
            dy = (dy + half) % self.side - half
        return (dx, dy)

    def distance(self, source: Point, target: Point) -> float:
        """Shortest distance between two points in the region."""
        dx, dy = self.displacement(source, target)
        return math.hypot(dx, dy)

    def direction(self, source: Point, target: Point) -> float:
        """Heading of the shortest path from ``source`` to ``target``.

        Raises :class:`~repro.errors.InvalidParameterError` for
        coincident points.
        """
        dx, dy = self.displacement(source, target)
        if dx == 0.0 and dy == 0.0:  # fvlint: disable=FV004 (exact zero-displacement sentinel)
            raise InvalidParameterError(
                "direction between coincident points is undefined"
            )
        return normalize_angle(math.atan2(dy, dx))

    # -- vectorised operations ----------------------------------------------

    def wrap_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`wrap_point` for an ``(n, 2)`` array."""
        points = np.asarray(points, dtype=float)
        if not self.torus:
            return points
        return np.mod(points, self.side)

    def displacements(self, source: Point, targets: np.ndarray) -> np.ndarray:
        """Shortest displacement vectors from one point to many.

        Parameters
        ----------
        source:
            A single ``(x, y)`` point.
        targets:
            An ``(n, 2)`` array of points.

        Returns
        -------
        ``(n, 2)`` array of displacement vectors.
        """
        targets = np.asarray(targets, dtype=float)
        delta = targets - np.asarray(source, dtype=float)
        if self.torus:
            half = 0.5 * self.side
            delta = np.mod(delta + half, self.side) - half
        return delta

    def distances(self, source: Point, targets: np.ndarray) -> np.ndarray:
        """Shortest distances from one point to many."""
        delta = self.displacements(source, targets)
        return np.hypot(delta[:, 0], delta[:, 1])

    def elementwise_displacements(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Displacement vectors between aligned point arrays.

        ``sources`` and ``targets`` are both ``(n, 2)``; row ``i`` of the
        result is the shortest displacement ``sources[i] -> targets[i]``.
        The wrap formula is the same one :meth:`pairwise_displacements`
        applies, so a pair evaluated here is bit-identical to the same
        pair inside a dense displacement block — the sparse coverage
        kernels rely on that.
        """
        sources = np.asarray(sources, dtype=float)
        targets = np.asarray(targets, dtype=float)
        delta = targets - sources
        if self.torus:
            half = 0.5 * self.side
            delta = np.mod(delta + half, self.side) - half
        return delta

    def pairwise_displacements(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """All displacement vectors between two point sets.

        Returns an ``(n_sources, n_targets, 2)`` array; use sparingly —
        memory grows as the product of the set sizes.
        """
        sources = np.asarray(sources, dtype=float)
        targets = np.asarray(targets, dtype=float)
        delta = targets[None, :, :] - sources[:, None, :]
        if self.torus:
            half = 0.5 * self.side
            delta = np.mod(delta + half, self.side) - half
        return delta

    def max_distance(self) -> float:
        """Largest possible distance between two points in the region."""
        if self.torus:
            return 0.5 * self.side * math.sqrt(2.0)
        return self.side * math.sqrt(2.0)


#: The paper's operational region: the unit torus.
UNIT_TORUS = Region(side=1.0, torus=True)

#: The unit square without wrap-around, for boundary-effect ablations.
UNIT_SQUARE = Region(side=1.0, torus=False)
