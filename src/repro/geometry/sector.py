"""The binary sector sensing region.

A camera sensor senses perfectly inside a sector of radius ``r`` and
central angle ``phi`` whose angular bisector is the camera orientation,
and senses nothing outside it (the *binary sector model*, Section II-A
of the paper).  :class:`Sector` is that region, anchored at an apex
point inside a :class:`~repro.geometry.torus.Region`.

The scalar predicates here are the readable reference implementation;
:mod:`repro.sensors.fleet` provides the vectorised equivalents used on
hot paths, and the test suite asserts they agree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI, angular_distance, normalize_angle
from repro.geometry.torus import Region, UNIT_TORUS

__all__ = ["Point", "Sector", "sector_area"]

Point = Tuple[float, float]

#: Squared distance below which a point counts as being at the apex
#: (covered regardless of bearing — the bearing is numerically
#: meaningless at this scale).
_APEX_TOL_SQ = 1e-24


@dataclass(frozen=True)
class Sector:
    """A sector-shaped sensing region.

    Parameters
    ----------
    apex:
        Location of the sensor (the sector's apex).
    radius:
        Sensing radius ``r > 0``.
    angle:
        Angle of view ``phi`` in ``(0, 2*pi]``.  ``phi == 2*pi`` models
        an omnidirectional (disk) sensor.
    orientation:
        Heading of the angular bisector ``f`` of the sector.
    region:
        Geometry provider; defaults to the paper's unit torus.
    """

    apex: Point
    radius: float
    angle: float
    orientation: float
    region: Region = UNIT_TORUS

    def __post_init__(self) -> None:
        if not (math.isfinite(self.radius) and self.radius > 0.0):
            raise InvalidParameterError(f"sensing radius must be positive, got {self.radius!r}")
        if not (0.0 < self.angle <= TWO_PI + 1e-12):
            raise InvalidParameterError(
                f"angle of view must be in (0, 2*pi], got {self.angle!r}"
            )
        object.__setattr__(self, "angle", min(float(self.angle), TWO_PI))
        object.__setattr__(self, "orientation", normalize_angle(self.orientation))
        object.__setattr__(
            self, "apex", self.region.wrap_point((float(self.apex[0]), float(self.apex[1])))
        )

    @property
    def is_omnidirectional(self) -> bool:
        """Whether the sector is a full disk (``phi == 2*pi``)."""
        return self.angle >= TWO_PI - 1e-12

    @property
    def area(self) -> float:
        """Sensing area ``s = phi * r**2 / 2`` (Section II-C)."""
        return 0.5 * self.angle * self.radius**2

    @property
    def half_angle(self) -> float:
        return 0.5 * self.angle

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside the sector (closed region).

        A point coincident with the apex is considered covered, matching
        the binary model's "senses perfectly within the sector".
        """
        dx, dy = self.region.displacement(self.apex, point)
        dist_sq = dx * dx + dy * dy
        if dist_sq > self.radius * self.radius:
            return False
        if self.is_omnidirectional:
            return True
        if dist_sq <= _APEX_TOL_SQ:
            return True
        bearing = math.atan2(dy, dx)
        return angular_distance(bearing, self.orientation) <= self.half_angle + 1e-12

    def contains_many(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains` for an ``(n, 2)`` array of points."""
        delta = self.region.displacements(self.apex, np.asarray(points, dtype=float))
        dist_sq = delta[:, 0] ** 2 + delta[:, 1] ** 2
        inside_radius = dist_sq <= self.radius**2
        if self.is_omnidirectional:
            return inside_radius
        bearing = np.arctan2(delta[:, 1], delta[:, 0])
        at_apex = dist_sq <= _APEX_TOL_SQ
        in_wedge = angular_distance(bearing, self.orientation) <= self.half_angle + 1e-12
        return inside_radius & (in_wedge | at_apex)

    def viewed_direction_of(self, point: Point) -> float:
        """The viewed direction ``P -> S`` of an object at ``point``.

        This is the heading from the object back to the sensor (the
        paper's ``vector PS``), the quantity compared against the facing
        direction in Definition 1.
        """
        return self.region.direction(point, self.apex)

    def boundary_points(self, samples_per_edge: int = 16) -> np.ndarray:
        """Sample points on the sector boundary (two radii + the arc).

        Useful for plotting and for containment property tests.
        """
        if samples_per_edge < 2:
            raise InvalidParameterError("samples_per_edge must be at least 2")
        lo = self.orientation - self.half_angle
        hi = self.orientation + self.half_angle
        # Stay a hair inside the rim so samples survive the closed-region
        # containment test despite float rounding in wrapped distances.
        rim = self.radius * (1.0 - 1e-9)
        ts = np.linspace(0.0, 1.0, samples_per_edge)
        edge_lo = np.stack(
            [
                self.apex[0] + ts * rim * math.cos(lo),
                self.apex[1] + ts * rim * math.sin(lo),
            ],
            axis=1,
        )
        edge_hi = np.stack(
            [
                self.apex[0] + ts * rim * math.cos(hi),
                self.apex[1] + ts * rim * math.sin(hi),
            ],
            axis=1,
        )
        arc_angles = np.linspace(lo, hi, samples_per_edge)
        arc = np.stack(
            [
                self.apex[0] + rim * np.cos(arc_angles),
                self.apex[1] + rim * np.sin(arc_angles),
            ],
            axis=1,
        )
        return self.region.wrap_points(np.concatenate([edge_lo, arc, edge_hi[::-1]]))


def sector_area(radius: float, angle: float) -> float:
    """Sensing area ``s = phi * r**2 / 2`` of a sector.

    This standalone helper mirrors :attr:`Sector.area` for use in the
    analytical layer, where no concrete sector exists.
    """
    if not (math.isfinite(radius) and radius > 0):
        raise InvalidParameterError(f"sensing radius must be positive, got {radius!r}")
    if not (0.0 < angle <= TWO_PI + 1e-12):
        raise InvalidParameterError(f"angle of view must be in (0, 2*pi], got {angle!r}")
    area = 0.5 * min(angle, TWO_PI) * radius * radius
    # Guard float under/overflow: a radius around 1e-160 squares to 0,
    # one around 1e160 to inf — both would silently break every formula
    # downstream that divides by or logs the area.
    if not (math.isfinite(area) and area > 0.0):
        raise InvalidParameterError(
            f"sensing area over/underflows for radius {radius!r}, angle {angle!r}"
        )
    return area
