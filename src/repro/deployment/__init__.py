"""Sensor deployment schemes.

The paper studies two random schemes (Section II-A): *uniform
deployment* (``n`` i.i.d. uniform positions) and *Poisson deployment*
(a 2-D Poisson point process of intensity ``n``).  The triangular
lattice of Wang & Cao and a square lattice are provided as the
deterministic baselines the related-work comparison references.

Every scheme consumes a :class:`~repro.sensors.model.HeterogeneousProfile`
and a seeded :class:`numpy.random.Generator` and returns a
:class:`~repro.sensors.fleet.SensorFleet` with orientations drawn
uniformly on the circle (orientations are fixed once deployed —
cameras cannot steer).
"""

from repro.deployment.base import DeploymentScheme
from repro.deployment.lattice import (
    SquareLatticeDeployment,
    TriangularLatticeDeployment,
)
from repro.deployment.poisson import PoissonDeployment
from repro.deployment.uniform import UniformDeployment

__all__ = [
    "DeploymentScheme",
    "PoissonDeployment",
    "SquareLatticeDeployment",
    "TriangularLatticeDeployment",
    "UniformDeployment",
]
