"""Matérn cluster deployment.

Air-dropped sensors rarely land i.i.d. uniform: each pass of the plane
scatters a *cluster*.  The Matérn cluster process models this — parent
points form a Poisson process, and each parent spawns a Poisson number
of sensors uniformly inside a disk around it.  As the number of parents
grows (at fixed total intensity) the process converges back to the
homogeneous Poisson process, so the parent count interpolates between
"one heap per drop" and the paper's idealised randomness.

The CLUSTER experiment uses this to quantify how much the paper's
uniform/Poisson assumption flatters real deployments.
"""

from __future__ import annotations


import numpy as np

from repro.deployment.base import DeploymentScheme
from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI
from repro.geometry.torus import Region, UNIT_TORUS

__all__ = ["MaternClusterDeployment"]


class MaternClusterDeployment(DeploymentScheme):
    """Matérn cluster process with ``~n`` total sensors.

    Parameters
    ----------
    expected_parents:
        Mean number of cluster parents (drop passes).  Each parent
        receives a Poisson-distributed share of the ``n`` sensors.
    cluster_radius:
        Radius of the disk around each parent in which its children
        land uniformly.
    region:
        Operational region; children wrap on the torus.
    """

    def __init__(
        self,
        expected_parents: float = 8.0,
        cluster_radius: float = 0.1,
        region: Region = UNIT_TORUS,
    ) -> None:
        super().__init__(region)
        if expected_parents <= 0:
            raise InvalidParameterError(
                f"expected_parents must be positive, got {expected_parents!r}"
            )
        if not (0 < cluster_radius <= region.side):
            raise InvalidParameterError(
                f"cluster_radius must be in (0, side], got {cluster_radius!r}"
            )
        self.expected_parents = float(expected_parents)
        self.cluster_radius = float(cluster_radius)

    def positions(self, n: int, rng: np.random.Generator) -> np.ndarray:
        num_parents = int(rng.poisson(self.expected_parents))
        if num_parents == 0:
            return np.empty((0, 2))
        parents = rng.uniform(0.0, self.region.side, size=(num_parents, 2))
        # Children per parent: Poisson with mean n / num_parents keeps
        # the expected total at n regardless of the parent draw.
        counts = rng.poisson(lam=n / num_parents, size=num_parents)
        total = int(counts.sum())
        if total == 0:
            return np.empty((0, 2))
        centers = np.repeat(parents, counts, axis=0)
        # Uniform in the disk: sqrt-radius times random angle.
        radii = self.cluster_radius * np.sqrt(rng.uniform(size=total))
        angles = rng.uniform(0.0, TWO_PI, size=total)
        offsets = np.stack([radii * np.cos(angles), radii * np.sin(angles)], axis=1)
        return self.region.wrap_points(centers + offsets)
