"""Uniform random deployment.

The paper's primary scheme: ``n`` sensors placed "randomly, uniformly
and independently" in the operational region (Section II-A).
"""

from __future__ import annotations

import numpy as np

from repro.deployment.base import DeploymentScheme

__all__ = ["UniformDeployment"]


class UniformDeployment(DeploymentScheme):
    """``n`` i.i.d. uniform positions in the region."""

    def positions(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(0.0, self.region.side, size=(n, 2))
