"""Deterministic lattice deployments.

Wang & Cao's companion analysis (the paper's reference [4], discussed
in Section VII-C) derives a *critical* full-view condition under
triangular-lattice deployment; a square lattice is the natural second
baseline.  Lattice positions are deterministic; only orientations stay
random, matching the "orientation cannot steer" model.

Both lattices place as close to ``n`` points as their symmetry allows
(the realised count is reported by the returned array length).
"""

from __future__ import annotations

import math

import numpy as np

from repro.deployment.base import DeploymentScheme

__all__ = ["SquareLatticeDeployment", "TriangularLatticeDeployment"]


class SquareLatticeDeployment(DeploymentScheme):
    """Points of a ``k x k`` square lattice, ``k = round(sqrt(n))``.

    Points sit at cell centres so the lattice is symmetric on the torus.
    """

    def positions(self, n: int, rng: np.random.Generator) -> np.ndarray:
        side = max(1, round(math.sqrt(n)))
        coords = (np.arange(side, dtype=float) + 0.5) * (self.region.side / side)
        xs, ys = np.meshgrid(coords, coords, indexing="ij")
        return np.stack([xs.ravel(), ys.ravel()], axis=1)


class TriangularLatticeDeployment(DeploymentScheme):
    """A triangular (hexagonal-packing) lattice of roughly ``n`` points.

    Rows are offset by half a column spacing; row spacing is
    ``sqrt(3)/2`` times column spacing, giving equilateral triangles in
    the plane.  On the torus the lattice wraps; the slight aspect
    mismatch between rows and columns is absorbed by rounding the row
    count, which preserves the triangular neighbourhood structure that
    the Wang-Cao analysis relies on.
    """

    def positions(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n == 1:
            return np.array([[0.5 * self.region.side, 0.5 * self.region.side]])
        # cols * rows ~= n with rows/cols ~= 2/sqrt(3) spacing ratio.
        cols = max(1, round(math.sqrt(n * math.sqrt(3.0) / 2.0)))
        rows = max(1, round(n / cols))
        dx = self.region.side / cols
        dy = self.region.side / rows
        points = np.empty((rows * cols, 2), dtype=float)
        k = 0
        for j in range(rows):
            offset = 0.25 * dx if j % 2 == 0 else 0.75 * dx
            y = (j + 0.5) * dy
            for i in range(cols):
                points[k, 0] = offset + i * dx
                points[k, 1] = y
                k += 1
        return self.region.wrap_points(points)
