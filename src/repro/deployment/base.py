"""Deployment scheme interface.

A deployment scheme turns (profile, target count, RNG) into a deployed
:class:`~repro.sensors.fleet.SensorFleet`.  Implementations must be
pure: the same RNG state yields the same fleet, which is what makes
Monte-Carlo experiments reproducible from a single seed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI
from repro.geometry.torus import Region, UNIT_TORUS
from repro.sensors.fleet import SensorFleet, fleet_from_profile_arrays
from repro.sensors.model import HeterogeneousProfile

__all__ = ["DeploymentScheme"]


class DeploymentScheme(ABC):
    """Base class for deployment schemes.

    Parameters
    ----------
    region:
        The operational region; defaults to the paper's unit torus.
    """

    def __init__(self, region: Region = UNIT_TORUS) -> None:
        self.region = region

    @abstractmethod
    def positions(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Generate sensor positions.

        May return more or fewer than ``n`` rows for schemes where the
        realised count is itself random (Poisson) or constrained
        (lattices); the fleet size follows the returned array.
        """

    def deploy(
        self,
        profile: HeterogeneousProfile,
        n: int,
        rng: np.random.Generator,
    ) -> SensorFleet:
        """Deploy ``~n`` sensors drawn from ``profile``.

        Group membership is assigned by randomly permuting positions and
        slicing them into blocks of size ``n_y = c_y * n`` (largest
        remainder), so membership is independent of location, as the
        model requires.  Orientations are i.i.d. uniform on the circle.
        """
        if n < 1:
            raise InvalidParameterError(f"sensor count must be >= 1, got {n!r}")
        positions = self.positions(n, rng)
        realised = positions.shape[0]
        if realised == 0:
            # An empty fleet is a legitimate Poisson outcome; represent
            # it with zero-length arrays.
            return SensorFleet(
                positions=np.empty((0, 2)),
                orientations=np.empty(0),
                radii=np.empty(0),
                angles=np.empty(0),
                region=self.region,
            )
        positions = positions[rng.permutation(realised)]
        orientations = rng.uniform(0.0, TWO_PI, size=realised)
        return fleet_from_profile_arrays(profile, positions, orientations, self.region)
