"""Orientation samplers.

The model fixes each camera's orientation at deployment time, drawn
uniformly on the circle (Section II-A).  Alternative samplers here
support ablations: biased orientations break the ``phi / 2*pi``
orientation-success probability that the analytical layer assumes, and
the inward sampler models hand-aimed perimeter installations.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI, normalize_angle

__all__ = [
    "InwardOrientation",
    "OrientationSampler",
    "UniformOrientation",
    "VonMisesOrientation",
]


class OrientationSampler(ABC):
    """Draws one orientation per sensor position."""

    @abstractmethod
    def sample(self, positions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Orientations (radians) for each row of ``positions``."""


@dataclass(frozen=True)
class UniformOrientation(OrientationSampler):
    """The paper's model: i.i.d. uniform orientations."""

    def sample(self, positions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(0.0, TWO_PI, size=positions.shape[0])


@dataclass(frozen=True)
class VonMisesOrientation(OrientationSampler):
    """Orientations concentrated around a preferred heading.

    ``kappa = 0`` reduces to uniform; large ``kappa`` aims every camera
    the same way, the worst case for full-view coverage.
    """

    mean: float = 0.0
    kappa: float = 1.0

    def __post_init__(self) -> None:
        if self.kappa < 0:
            raise InvalidParameterError(f"kappa must be non-negative, got {self.kappa!r}")

    def sample(self, positions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        mu = normalize_angle(self.mean) - math.pi  # vonmises wants mu in [-pi, pi]
        draws = rng.vonmises(mu=mu, kappa=self.kappa, size=positions.shape[0])
        return normalize_angle(draws + math.pi)


@dataclass(frozen=True)
class InwardOrientation(OrientationSampler):
    """Each camera aims at a common focal point (e.g. the region centre).

    Models hand-installed perimeter cameras around an object of
    interest; full-view coverage of the focal point is then achieved
    with far fewer sensors than random aiming needs.
    """

    focus_x: float = 0.5
    focus_y: float = 0.5
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.jitter < 0:
            raise InvalidParameterError(f"jitter must be non-negative, got {self.jitter!r}")

    def sample(self, positions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        positions = np.asarray(positions, dtype=float)
        dx = self.focus_x - positions[:, 0]
        dy = self.focus_y - positions[:, 1]
        headings = np.arctan2(dy, dx)
        if self.jitter > 0:
            headings = headings + rng.normal(scale=self.jitter, size=headings.shape)
        return normalize_angle(headings)
