"""Poisson random deployment.

A homogeneous 2-D Poisson point process over the region.  With ``n``
requested sensors on the unit square the intensity is ``lambda = n``
(Section V of the paper), so the realised count is ``Poisson(n * area)``
and positions are i.i.d. uniform given the count.
"""

from __future__ import annotations

import numpy as np

from repro.deployment.base import DeploymentScheme

__all__ = ["PoissonDeployment"]


class PoissonDeployment(DeploymentScheme):
    """Homogeneous Poisson point process of intensity ``n / area``.

    The ``n`` passed to :meth:`positions` is the *expected* total count
    over the region; the realised count varies between trials, which is
    exactly the difference from uniform deployment that Section V
    studies.
    """

    def positions(self, n: int, rng: np.random.Generator) -> np.ndarray:
        realised = int(rng.poisson(lam=float(n)))
        if realised == 0:
            return np.empty((0, 2))
        return rng.uniform(0.0, self.region.side, size=(realised, 2))
